"""Experiment E9 — the fingerprint-keyed content-model cache.

Service-style workloads re-run inference over overlapping corpora, so
the per-element finalize step (Section 5/6 rewrite + repair for iDTD)
keeps re-deriving content models it has already computed.  This module
measures what the :mod:`repro.runtime.cache` memoization buys on a
repeated corpus:

* **correctness** — cached and uncached renders must be byte-identical
  (asserted unconditionally; the deeper property suite lives in
  ``tests/runtime/test_cache.py``);
* **speed** — the finalize step over already-merged learner states is
  timed cold (no cache) and warm (every fingerprint already present);
  a >= 2x speedup is asserted — on a warm cache the rewrite/repair
  work disappears and only fingerprint hashing and DTD assembly remain;
* **accounting** — hit/miss counters and the scheduler's backend
  choice for this corpus are recorded into ``BENCH_phases.json`` under
  the ``cache`` section (the CI perf gate tracks them).

The corpus is structural (every leaf ``EMPTY``, attributes off) so the
numbers isolate the learner, not text sniffing.
"""

from __future__ import annotations

import random

from perf_record import update_bench_json
from repro.api import InferenceConfig, infer
from repro.core.inference import DTDInferencer
from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.evaluation.tables import Table
from repro.evaluation.timing import timed
from repro.obs.recorder import StatsRecorder
from repro.runtime.cache import (
    ContentModelCache,
    reset_global_content_model_cache,
)
from repro.runtime.parallel import choose_backend, parallel_evidence
from repro.xmlio.dtd import parse_dtd

# Several elements with wide optional content models make the
# Section 5/6 rewrite + repair (the work the cache elides) the
# dominant finalize cost.
def _heavy_element(k: int) -> str:
    symbols = [f"e{k}x{i}" for i in range(12)]
    return (
        f"<!ELEMENT h{k} ("
        + ", ".join(f"{symbol}?" for symbol in symbols)
        + ")>"
        + "".join(f"<!ELEMENT {symbol} EMPTY>" for symbol in symbols)
    )


CORPUS_DTD = "<!ELEMENT r (h0, h1?, h2?, h3?, h4?, h5?)>" + "".join(
    _heavy_element(k) for k in range(6)
)

BEST_OF = 5


def write_corpus(directory, count: int) -> list[str]:
    generator = XmlGenerator(parse_dtd(CORPUS_DTD), random.Random(7))
    paths = []
    for index, document in enumerate(generator.corpus(count)):
        path = directory / f"doc{index:04d}.xml"
        path.write_text(serialize(document), encoding="utf-8")
        paths.append(str(path))
    return paths


def best_of(fn, repeats: int = BEST_OF) -> float:
    return min(timed(fn).seconds for _ in range(repeats))


def reset_learner_memos(evidence) -> None:
    """Simulate freshly extracted learner states.

    Each ``api.infer`` call over a corpus re-extracts evidence, so the
    per-object memo inside the incremental learners starts empty every
    run — only the fingerprint cache survives across runs.  Timing the
    same evidence object without this reset would measure that memo,
    not the cache.
    """
    for element in evidence.elements.values():
        element.soa._cached = None
        element.crx._cached = None


def test_cached_finalize_speedup(tmp_path, scale, benchmark):
    count = 300 if scale.is_full else 80
    paths = write_corpus(tmp_path, count)
    evidence = parallel_evidence(paths)

    # Timed region = finalize only (rewrite/repair vs cache lookups);
    # rendering is identical on both sides and would only dilute the
    # ratio, so correctness is compared on renders outside the clock.
    def finalize(cache: ContentModelCache | None):
        reset_learner_memos(evidence)
        inferencer = DTDInferencer(
            method="idtd", infer_attributes=False, cache=cache
        )
        return inferencer._finalize_streaming(evidence)

    reference = finalize(None).render()
    warm_cache = ContentModelCache()
    assert finalize(warm_cache).render() == reference  # populate + correctness
    assert warm_cache.misses > 0
    assert finalize(warm_cache).render() == reference  # all-hits + correctness
    assert warm_cache.hits > 0

    cold_seconds = best_of(lambda: finalize(None))
    warm_seconds = best_of(lambda: finalize(warm_cache))
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")

    backend_chosen, _ = choose_backend(len(paths))
    table = Table(
        headers=("finalize", "seconds"),
        title=f"E9: content-model cache, {len(paths)} documents "
        f"(best of {BEST_OF})",
    )
    table.add("uncached (fresh rewrite/repair)", f"{cold_seconds:.5f}")
    table.add("warm cache (all hits)", f"{warm_seconds:.5f}")
    table.add("speedup", f"{speedup:.2f}x")
    table.show()
    update_bench_json(
        "cache",
        {
            "documents": len(paths),
            "backend_chosen": backend_chosen,
            "uncached_finalize_seconds": cold_seconds,
            "cached_finalize_seconds": warm_seconds,
            "speedup_uncached_over_cached": speedup,
            "hits": warm_cache.hits,
            "misses": warm_cache.misses,
        },
    )
    benchmark(lambda: finalize(warm_cache))
    assert speedup >= 2.0, (
        f"expected the warm cache to at least halve finalize time, "
        f"got {speedup:.2f}x"
    )


def test_repeated_corpus_end_to_end_counters(tmp_path, scale):
    """Through the façade: the second identical run hits, output stays
    byte-identical, and the recorder surfaces the counters --stats shows."""
    paths = write_corpus(tmp_path, 60 if scale.is_full else 30)
    reset_global_content_model_cache()
    try:
        first = infer(paths, config=InferenceConfig(method="idtd")).render()
        recorder = StatsRecorder()
        second = infer(
            paths, config=InferenceConfig(method="idtd", recorder=recorder)
        ).render()
        assert second == first
        counters = recorder.snapshot()["counters"]
        assert counters.get("cache.content_model.hits", 0) > 0
        assert counters.get("cache.content_model.misses", 0) == 0
    finally:
        reset_global_content_model_cache()
