"""The rule implementations of :mod:`repro.analysis`.

Each rule is a stateless object with a ``code``, a ``title`` and a
``check(module)`` generator.  Rules work purely on the AST plus the
shared pragma index in :class:`~repro.analysis.ParsedModule`; none of
them import the modules they inspect.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from . import Finding, ParsedModule

#: Entry points superseded by :func:`repro.api.infer`.  Referencing any
#: of these by name inside src is a regression to the pre-façade API.
LEGACY_NAMES = frozenset({"infer_dtd", "infer_parallel"})
LEGACY_ATTRIBUTES = frozenset({"infer_from_evidence", "infer_from_streaming"})

#: The daemon speaks only the public façade (R001's second half): a
#: serve module reaching into repro.core/runtime/xmlio directly would
#: let the HTTP surface drift from the library's semantics.
SERVE_PACKAGE_MARKER = "repro/serve/"
SERVE_ALLOWED_PACKAGES = frozenset({"api", "errors", "obs", "serve"})

#: Builtin exceptions that must not be raised directly (R002); the
#: repro.errors hierarchy (or a subclass) carries the exit-code
#: contract.  Control-flow and protocol exceptions stay allowed.
FORBIDDEN_RAISES = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "RuntimeError",
        "TypeError",
        "ValueError",
    }
)

#: Packages forming the deterministic core pipeline (R005).  datagen,
#: evaluation, baselines and the CLI legitimately use randomness or
#: wall clocks; repro.obs owns all timing.
CORE_PACKAGE_MARKERS = (
    "repro/automata/",
    "repro/core/",
    "repro/learning/",
    "repro/regex/",
    "repro/runtime/",
    "repro/xmlio/",
)

#: ``random`` module functions that are fine to call anywhere: seeded
#: constructors create injected generators rather than using hidden
#: global state.
ALLOWED_RANDOM_ATTRIBUTES = frozenset({"Random", "SystemRandom"})

WALL_CLOCK_NAMES = frozenset(
    {"time", "perf_counter", "monotonic", "process_time", "time_ns"}
)


def _function_stack(tree: ast.AST) -> dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None]:
    """Map every node to its innermost enclosing function definition."""
    enclosing: dict[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None] = {}

    def visit(
        node: ast.AST, function: ast.FunctionDef | ast.AsyncFunctionDef | None
    ) -> None:
        enclosing[node] = function
        inner = (
            node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else function
        )
        for child in ast.iter_child_nodes(node):
            visit(child, inner)

    visit(tree, None)
    return enclosing


class Rule:
    """Base class: a code, a human title, and an AST check."""

    code: str = ""
    title: str = ""

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        raise NotImplementedError  # lint: allow R002 — abstract-method protocol

    def _emit(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Iterator[Finding]:
        finding = module.finding(self.code, node, message)
        if finding is not None:
            yield finding


class NoLegacyEntryPoints(Rule):
    """R001: inside src, all inference goes through repro.api.infer.

    Two halves of the same contract.  Everywhere in src, the
    deprecated pre-façade entry points are off limits.  Additionally,
    inside ``repro/serve/`` *all* internal imports are confined to the
    public façade surface (:data:`SERVE_ALLOWED_PACKAGES`): the daemon
    is a transport, and any inference logic it grew by importing
    ``repro.core``/``repro.runtime``/``repro.xmlio`` directly would
    drift from what library callers get.
    """

    code = "R001"
    title = "no internal use of deprecated legacy entry points"

    def _serve_findings(self, module: ParsedModule) -> Iterator[Finding]:
        def complain(node: ast.AST, imported: str) -> Iterator[Finding]:
            yield from self._emit(
                module,
                node,
                f"repro.serve may only import the façade surface "
                f"({', '.join(sorted('repro.' + p for p in SERVE_ALLOWED_PACKAGES - {'serve'}))} "
                f"and serve-internal modules), not {imported}",
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.level == 1:
                    continue  # serve-internal relative import
                if node.level >= 2:
                    if node.module is None:
                        for alias in node.names:
                            top = alias.name.split(".")[0]
                            if top not in SERVE_ALLOWED_PACKAGES:
                                yield from complain(node, f"repro.{alias.name}")
                    else:
                        top = node.module.split(".")[0]
                        if top not in SERVE_ALLOWED_PACKAGES:
                            yield from complain(node, f"repro.{node.module}")
                elif node.module == "repro" or (
                    node.module is not None
                    and node.module.startswith("repro.")
                ):
                    parts = node.module.split(".")
                    if len(parts) == 1:
                        for alias in node.names:
                            if alias.name not in SERVE_ALLOWED_PACKAGES:
                                yield from complain(node, f"repro.{alias.name}")
                    elif parts[1] not in SERVE_ALLOWED_PACKAGES:
                        yield from complain(node, node.module)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro":
                        yield from complain(node, "the whole repro package")
                    elif (
                        alias.name.startswith("repro.")
                        and alias.name.split(".")[1]
                        not in SERVE_ALLOWED_PACKAGES
                    ):
                        yield from complain(node, alias.name)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if SERVE_PACKAGE_MARKER in module.path.replace("\\", "/"):
            yield from self._serve_findings(module)
        defined_here = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        is_package_init = module.path.endswith("__init__.py")
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in LEGACY_NAMES
                and node.id not in defined_here
            ):
                yield from self._emit(
                    module,
                    node,
                    f"deprecated entry point {node.id!r} used internally; "
                    "call repro.api.infer instead",
                )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr in LEGACY_ATTRIBUTES
                and node.attr not in defined_here
            ):
                yield from self._emit(
                    module,
                    node,
                    f"deprecated entry point .{node.attr}() used internally; "
                    "call repro.api.infer instead",
                )
            elif isinstance(node, ast.ImportFrom) and not is_package_init:
                # Package __init__ modules re-export the deprecated
                # names for backwards compatibility; importing them
                # anywhere else invites internal use.
                for alias in node.names:
                    if alias.name in LEGACY_NAMES:
                        yield from self._emit(
                            module,
                            node,
                            f"import of deprecated entry point {alias.name!r}; "
                            "call repro.api.infer instead",
                        )


class TypedRaises(Rule):
    """R002: raised exceptions carry the repro.errors exit-code contract."""

    code = "R002"
    title = "raise repro.errors exceptions, not bare builtins"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in FORBIDDEN_RAISES:
                yield from self._emit(
                    module,
                    node,
                    f"raises builtin {exc.id}; use the repro.errors "
                    "hierarchy (UsageError / CorpusError / InternalError) "
                    "or a subclass so the exit-code mapping applies",
                )


#: Lookup exceptions that, inside :mod:`repro.runtime`, almost always
#: signal shard/pool *bookkeeping* bugs (a shard index or pool kind
#: missing from a dict the runtime itself maintains).  Swallowing one
#: there hides an engine bug; R003 requires the handler to re-raise
#: (typically as InternalError naming the missing key) or count.
RUNTIME_LOOKUP_NAMES = frozenset({"KeyError", "IndexError", "LookupError"})

RUNTIME_PACKAGE_MARKER = "repro/runtime/"


class NoSilentSwallow(Rule):
    """R003: broad handlers must re-raise or count what they swallow.

    Inside ``repro/runtime/`` the same requirement extends to lookup
    exceptions (:data:`RUNTIME_LOOKUP_NAMES`): the runtime's dicts are
    its own shard/pool bookkeeping, so a swallowed ``KeyError`` there
    is a silently-ignored engine bug, not input handling.
    """

    code = "R003"
    title = "no bare/broad except that silently swallows"

    @staticmethod
    def _handler_names(handler: ast.ExceptHandler) -> list[ast.expr]:
        if handler.type is None:
            return []
        if isinstance(handler.type, ast.Tuple):
            return list(handler.type.elts)
        return [handler.type]

    @classmethod
    def _is_broad(cls, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        return any(
            isinstance(name, ast.Name)
            and name.id in ("Exception", "BaseException")
            for name in cls._handler_names(handler)
        )

    @classmethod
    def _caught_lookups(cls, handler: ast.ExceptHandler) -> list[str]:
        return [
            name.id
            for name in cls._handler_names(handler)
            if isinstance(name, ast.Name) and name.id in RUNTIME_LOOKUP_NAMES
        ]

    @staticmethod
    def _handles_visibly(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "count"
            ):
                return True
        return False

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        in_runtime = RUNTIME_PACKAGE_MARKER in module.path.replace("\\", "/")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._handles_visibly(node):
                continue
            if self._is_broad(node):
                label = "bare except" if node.type is None else "except Exception"
                yield from self._emit(
                    module,
                    node,
                    f"{label} swallows without re-raising or bumping a "
                    "recorder counter; narrow the exception type, re-raise, "
                    "or record the swallow",
                )
            elif in_runtime and (lookups := self._caught_lookups(node)):
                yield from self._emit(
                    module,
                    node,
                    f"except {'/'.join(sorted(lookups))} in repro/runtime/ "
                    "swallows what is almost certainly a shard/pool "
                    "bookkeeping bug; re-raise it as InternalError naming "
                    "the missing key, or record the swallow",
                )


class NoFrozenMutation(Rule):
    """R004: frozen dataclasses stay frozen outside __post_init__."""

    code = "R004"
    title = "no object.__setattr__ outside __post_init__"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        enclosing = _function_stack(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            function = enclosing.get(node)
            if function is not None and function.name == "__post_init__":
                continue
            yield from self._emit(
                module,
                node,
                "object.__setattr__ mutates a frozen dataclass outside "
                "__post_init__; construct a new instance instead",
            )


class DeterministicCore(Rule):
    """R005: the core pipeline is deterministic and clock-free."""

    code = "R005"
    title = "no hidden randomness or wall clocks in the core pipeline"

    @staticmethod
    def _in_core(module: ParsedModule) -> bool:
        normalized = module.path.replace("\\", "/")
        return any(marker in normalized for marker in CORE_PACKAGE_MARKERS)

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        in_core = self._in_core(module)
        for node in ast.walk(module.tree):
            # Global-state randomness is wrong everywhere in src: even
            # datagen seeds explicit random.Random instances.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr not in ALLOWED_RANDOM_ATTRIBUTES
            ):
                yield from self._emit(
                    module,
                    node,
                    f"random.{node.func.attr}() uses the shared global RNG; "
                    "inject a seeded random.Random instead",
                )
            if not in_core:
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        yield from self._emit(
                            module,
                            node,
                            "core module imports the time module; timing "
                            "belongs in repro.obs",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                clocks = [
                    alias.name
                    for alias in node.names
                    if alias.name in WALL_CLOCK_NAMES
                ]
                if clocks:
                    yield from self._emit(
                        module,
                        node,
                        f"core module imports wall-clock function(s) "
                        f"{', '.join(clocks)} from time; timing belongs in "
                        "repro.obs",
                    )


ALL_RULES: tuple[Rule, ...] = (
    NoLegacyEntryPoints(),
    TypedRaises(),
    NoSilentSwallow(),
    NoFrozenMutation(),
    DeterministicCore(),
)
