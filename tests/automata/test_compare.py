"""Cross-representation language comparison (SOA vs RE)."""

from hypothesis import given, settings

from repro.automata.compare import (
    regex_included_in_soa,
    regex_vs_soa_counterexample,
    soa_equivalent_to_regex,
    soa_included_in_regex,
    soa_vs_regex_counterexample,
)
from repro.automata.soa import SOA
from repro.regex.parser import parse_regex

from ..conftest import sores


class TestInclusion:
    def test_soa_in_regex(self):
        soa = SOA.from_regex(parse_regex("a b"))
        assert soa_included_in_regex(soa, parse_regex("a b?"))
        assert not soa_included_in_regex(soa, parse_regex("a"))

    def test_regex_in_soa(self):
        soa = SOA.from_regex(parse_regex("a b?"))
        assert regex_included_in_soa(parse_regex("a b"), soa)
        assert not regex_included_in_soa(parse_regex("a b b"), soa)

    def test_counterexamples_are_witnesses(self):
        soa = SOA.from_regex(parse_regex("a+"))
        witness = soa_vs_regex_counterexample(soa, parse_regex("a"))
        assert witness == ("a", "a")
        witness = regex_vs_soa_counterexample(
            parse_regex("a*"), SOA.from_regex(parse_regex("a+"))
        )
        assert witness == ()

    def test_empty_word_handling(self):
        soa = SOA.from_regex(parse_regex("a?"))
        assert soa.accepts_empty
        assert soa_included_in_regex(soa, parse_regex("a?"))
        assert not soa_included_in_regex(soa, parse_regex("a"))


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(sores(max_symbols=6))
    def test_sore_equivalent_to_its_soa(self, expression):
        """Proposition 1, cross-checked via the product construction."""
        soa = SOA.from_regex(expression)
        assert soa_equivalent_to_regex(soa, expression)

    def test_inequivalent(self):
        soa = SOA.from_regex(parse_regex("a b"))
        assert not soa_equivalent_to_regex(soa, parse_regex("a b?"))
