"""XML parser: features and strictness."""

import pytest

from repro.xmlio.parser import XmlSyntaxError, parse_document


class TestBasics:
    def test_minimal_document(self):
        document = parse_document("<root/>")
        assert document.root.name == "root"
        assert not document.root.children

    def test_nested_elements_preserve_order(self):
        document = parse_document("<r><a/><b/><a/></r>")
        assert document.root.child_names() == ("a", "b", "a")

    def test_attributes(self):
        document = parse_document(
            """<r id="1" name='two &amp; three'/>"""
        )
        assert document.root.attributes == {"id": "1", "name": "two & three"}

    def test_text_content(self):
        document = parse_document("<r>hello <b>bold</b> world</r>")
        assert document.root.text() == "hello  world"
        assert document.root.children[0].text() == "bold"

    def test_xml_declaration_and_comments(self):
        document = parse_document(
            '<?xml version="1.0"?><!-- hi --><r/><!-- bye -->'
        )
        assert document.root.name == "r"

    def test_processing_instructions_skipped(self):
        document = parse_document("<r><?php echo; ?><a/></r>")
        assert document.root.child_names() == ("a",)

    def test_cdata(self):
        document = parse_document("<r><![CDATA[<not> &parsed;]]></r>")
        assert document.root.text() == "<not> &parsed;"

    def test_entity_references(self):
        document = parse_document("<r>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</r>")
        assert document.root.text() == "<>&\"'AB"

    def test_unknown_entities_kept_verbatim(self):
        document = parse_document("<r>&nbsp;</r>")
        assert document.root.text() == "&nbsp;"

    def test_namespace_prefixes_are_opaque_names(self):
        document = parse_document("<x:r xmlns:x='urn:x'><x:a/></x:r>")
        assert document.root.name == "x:r"
        assert document.root.child_names() == ("x:a",)


class TestDoctype:
    def test_doctype_name_captured(self):
        document = parse_document("<!DOCTYPE r><r/>")
        assert document.doctype_name == "r"
        assert document.internal_subset is None

    def test_internal_subset_captured(self):
        document = parse_document(
            "<!DOCTYPE r [<!ELEMENT r (a)><!ELEMENT a EMPTY>]><r><a/></r>"
        )
        assert "<!ELEMENT r (a)>" in document.internal_subset

    def test_system_identifier_skipped(self):
        document = parse_document(
            '<!DOCTYPE r SYSTEM "r.dtd"><r/>'
        )
        assert document.doctype_name == "r"


class TestStrictness:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<r>",
            "<r></s>",
            "<r><a></r></a>",
            "<r",
            "<r a=1/>",
            "<r a='1' a='2'/>",
            "<r/><r/>",
            "text only",
            "<r>&unterminated</r>",
            "<!DOCTYPE r <r/>",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XmlSyntaxError):
            parse_document(bad)

    def test_error_reports_line_and_column(self):
        with pytest.raises(XmlSyntaxError) as info:
            parse_document("<r>\n  <a></b>\n</r>")
        assert info.value.line == 2
