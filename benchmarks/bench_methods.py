"""Experiment E11 — the beyond-SORE learners (``kore`` and ``sire``).

Headline numbers for the two extension methods on the corpora they
exist for, against the paper's learners on the same data:

* **kore vs SORE** on a repeated-symbol corpus (``a b? a c? a``): the
  k-ORE learner must *recover the target exactly* where iDTD merges
  the repeated anchor into a star soup, and its k-descent over clamped
  automata must stay within a bounded factor of plain iDTD;
* **sire vs CHARE** on a shuffled corpus (``(a b?) & c & d+``): the
  interleaving learner must recover the target where CRX collapses
  the shuffle into one starred disjunction, again at bounded cost.

Both recovery bits and both cost ratios land in ``BENCH_phases.json``
under the ``methods`` section, where ``perf_gate.py`` holds the
floors: recovery is a hard 1.0 (the method's reason to exist), the
ratios are loose ceilings that catch an accidentally quadratic
rewrite without flaking on runner noise.
"""

from __future__ import annotations

from perf_record import update_bench_json
from repro.core.crx import crx
from repro.core.idtd import idtd
from repro.datagen.occurrences import repeated_symbol_corpus, shuffled_corpus
from repro.evaluation.tables import Table
from repro.evaluation.timing import timed
from repro.learning.kore import IncrementalKore
from repro.learning.sire import IncrementalSire
from repro.regex.language import language_equivalent

BEST_OF = 3

REPEATED_ALPHABET = ("a", "b", "c")
SHUFFLED_BLOCKS = ("a b?", "c", "d+")


def _learn_kore(words):
    learner = IncrementalKore()
    learner.add_all(words)
    return learner.infer()


def _learn_sire(words):
    learner = IncrementalSire()
    learner.add_all(words)
    return learner.infer()


def _best_of(fn) -> float:
    return min(timed(fn).seconds for _ in range(BEST_OF))


def test_methods_headline_numbers(rng, scale, benchmark):
    count = scale.noise_words // 2
    repeated_target, repeated_words = repeated_symbol_corpus(
        REPEATED_ALPHABET, count, rng, k=3
    )
    shuffled_target, shuffled_words = shuffled_corpus(
        SHUFFLED_BLOCKS, count, rng
    )

    kore_seconds = _best_of(lambda: _learn_kore(repeated_words))
    sore_seconds = _best_of(lambda: idtd(repeated_words))
    sire_seconds = _best_of(lambda: _learn_sire(shuffled_words))
    chare_seconds = _best_of(lambda: crx(shuffled_words))

    kore_recovers = language_equivalent(
        _learn_kore(repeated_words), repeated_target
    )
    sore_recovers = language_equivalent(
        idtd(repeated_words), repeated_target
    )
    sire_recovers = language_equivalent(
        _learn_sire(shuffled_words), shuffled_target
    )
    chare_recovers = language_equivalent(
        crx(shuffled_words), shuffled_target
    )

    kore_ratio = kore_seconds / sore_seconds if sore_seconds else float("inf")
    sire_ratio = (
        sire_seconds / chare_seconds if chare_seconds else float("inf")
    )

    table = Table(
        headers=("method", "corpus", "seconds", "target recovered"),
        title=(
            f"E11: beyond-SORE learners, {count} words per corpus "
            f"(best of {BEST_OF})"
        ),
    )
    table.add("kore", "repeated", f"{kore_seconds:.4f}", str(kore_recovers))
    table.add("idtd", "repeated", f"{sore_seconds:.4f}", str(sore_recovers))
    table.add("sire", "shuffled", f"{sire_seconds:.4f}", str(sire_recovers))
    table.add("crx", "shuffled", f"{chare_seconds:.4f}", str(chare_recovers))
    table.show()

    update_bench_json(
        "methods",
        {
            "words_per_corpus": count,
            "kore_seconds": kore_seconds,
            "sore_seconds": sore_seconds,
            "sire_seconds": sire_seconds,
            "chare_seconds": chare_seconds,
            "kore_over_sore_ratio": kore_ratio,
            "sire_over_chare_ratio": sire_ratio,
            "kore_recovers_target": float(kore_recovers),
            "sire_recovers_target": float(sire_recovers),
        },
    )
    benchmark(lambda: _learn_kore(repeated_words))

    # The expressiveness gap this experiment demonstrates: the new
    # learners recover their targets, the paper's learners cannot.
    assert kore_recovers and sire_recovers
    assert not sore_recovers and not chare_recovers


def test_sire_degeneration_costs_nothing_extra(rng, scale, benchmark):
    """Conflict-free data: sire must hand straight off to the CHARE."""
    _, words = repeated_symbol_corpus(("x",), scale.noise_words // 2, rng)
    assert _learn_sire(words) == crx(words)
    sire_seconds = _best_of(lambda: _learn_sire(words))
    chare_seconds = _best_of(lambda: crx(words))
    print(
        f"\nE11b: sire on conflict-free data {sire_seconds:.4f}s vs "
        f"crx {chare_seconds:.4f}s"
    )
    benchmark(lambda: _learn_sire(words))
    # The precedence bookkeeping rides on top of the CHARE pass; a
    # blow-up here means the factorization runs even when idle.
    assert sire_seconds <= chare_seconds * 10 + 0.05
