"""Debug-mode runtime contracts for the SOA → SORE pipeline.

The paper states structural invariants that the pipeline otherwise
never enforces at runtime:

* every automaton produced by 2T-INF is a well-formed SOA (the
  ``(I, F, S)`` triple only mentions known symbols — Section 4);
* every rewrite/repair step leaves the GFA well-formed: the adjacency
  maps stay mirrored, no edge enters the source or leaves the sink,
  labels stay single-occurrence and star-free (Section 5 keeps ``r*``
  as ``(r+)?`` until post-processing);
* every emitted expression is in Claim 1 normal form — re-normalizing
  it is a no-op (idempotence);
* the classifiers agree with the learners: iDTD emits SOREs, CRX emits
  CHAREs, and every CHARE is a SORE; content models are deterministic
  (one-unambiguous) as the XML specification requires;
* the streaming fold is a commutative monoid: merging shard states in
  either order yields the same learner state (Section 9).

Checks are **off by default** and compile down to a single predicate
call (:func:`contracts_enabled`) at each call site, so production runs
pay nothing measurable.  Enable them with the environment variable
``REPRO_CHECKS=1``, the CLI flag ``repro-infer infer --check``, or
programmatically via :func:`set_contracts` / :func:`contracts_active`.

A failed contract raises :class:`ContractViolation`, a subclass of
:class:`~repro.errors.InternalError`: an invariant breach is by
definition an engine bug, never the user's fault, and maps to exit
code 2.

Adding a contract: write a ``check_*`` function here that raises
:class:`ContractViolation` with a message naming the invariant, then
guard the call site with ``if contracts_enabled():``.  Keep each check
side-effect free — it must never mutate the object it inspects.
"""

from __future__ import annotations

import copy
import os
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING

from .errors import InternalError

if TYPE_CHECKING:
    from .automata.gfa import GFA
    from .automata.soa import SOA
    from .regex.ast import Regex
    from .runtime.resilience import DegradationReport
    from .xmlio.dtd import Dtd
    from .learning.evidence import StreamingEvidence

__all__ = [
    "ContractViolation",
    "check_cached_content_model",
    "check_checkpoint_resume",
    "check_checkpoint_roundtrip",
    "check_degradation_report",
    "check_emitted_chare",
    "check_emitted_sore",
    "check_gfa",
    "check_merge_commutative",
    "check_content_model",
    "check_soa",
    "contracts_active",
    "contracts_enabled",
    "set_contracts",
]


class ContractViolation(InternalError):
    """A structural invariant of the pipeline was broken (engine bug)."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CHECKS", "") not in ("", "0")


_enabled: bool = _env_enabled()


def contracts_enabled() -> bool:
    """Whether invariant checks are active.  Call sites guard on this."""
    return _enabled


def set_contracts(on: bool) -> None:
    """Switch invariant checking on or off for the whole process."""
    global _enabled
    _enabled = on


@contextmanager
def contracts_active(on: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) contracts; restores on exit."""
    global _enabled
    previous = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = previous


def _violated(invariant: str, detail: str) -> ContractViolation:
    return ContractViolation(f"contract violated [{invariant}]: {detail}")


# -- SOA invariants (Section 4) ----------------------------------------------


def check_soa(soa: SOA, context: str = "tinf") -> None:
    """The ``(I, F, S)`` triple only mentions known symbols.

    A SOA identifies states with alphabet symbols, so the single
    occurrence property is structural; what can break is the triple
    referring to symbols that are not states.
    """
    endpoints = {symbol for edge in soa.edges for symbol in edge}
    unknown = (soa.initial | soa.final | endpoints) - soa.symbols
    if unknown:
        raise _violated(
            f"{context}.soa-well-formed",
            f"I/F/S mention symbols outside the state set: {sorted(unknown)}",
        )
    if any(not symbol for symbol in soa.symbols):
        raise _violated(
            f"{context}.soa-well-formed", "empty string used as a state symbol"
        )


# -- GFA invariants (Section 5) ----------------------------------------------


def check_gfa(gfa: GFA, context: str = "rewrite") -> None:
    """Well-formedness of a (mid-rewrite) generalized automaton.

    Checked after every rewrite rule application and every repair:
    adjacency maps mirror each other, the endpoints are intact, and
    the labels are single-occurrence and star-free (during rewriting
    ``r*`` must stay represented as ``(r+)?``).
    """
    from .automata.gfa import SINK, SOURCE
    from .regex.ast import Star

    out_edges = {
        (tail, head) for tail, heads in gfa._out.items() for head in heads
    }
    in_edges = {
        (tail, head) for head, tails in gfa._in.items() for tail in tails
    }
    if out_edges != in_edges:
        mismatch = out_edges.symmetric_difference(in_edges)
        raise _violated(
            f"{context}.gfa-adjacency",
            f"_out/_in adjacency maps disagree on edges {sorted(mismatch)}",
        )
    expected_nodes = set(gfa.labels) | {SOURCE, SINK}
    if set(gfa._out) != expected_nodes or set(gfa._in) != expected_nodes:
        raise _violated(
            f"{context}.gfa-nodes",
            "adjacency maps and label table track different node sets",
        )
    if gfa._in[SOURCE]:
        raise _violated(
            f"{context}.gfa-endpoints",
            f"the source has incoming edges from {sorted(gfa._in[SOURCE])}",
        )
    if gfa._out[SINK]:
        raise _violated(
            f"{context}.gfa-endpoints",
            f"the sink has outgoing edges to {sorted(gfa._out[SINK])}",
        )
    if not gfa.is_single_occurrence():
        raise _violated(
            f"{context}.gfa-single-occurrence",
            "some alphabet symbol occurs in more than one label (or twice "
            "in one)",
        )
    for node, label in gfa.labels.items():
        if any(isinstance(part, Star) for part in label.walk()):
            raise _violated(
                f"{context}.gfa-star-free",
                f"node {node} carries a Kleene star mid-rewrite: {label}; "
                "stars must stay in (r+)? form until post-processing",
            )


# -- emitted-expression invariants (Claim 1, Section 7) ----------------------


def _check_normal_form(regex: Regex, invariant: str) -> None:
    from .regex.normalize import normalize, simplify

    renormalized = normalize(regex)
    if renormalized != regex:
        raise _violated(
            invariant,
            f"emitted expression is not normal-form idempotent: {regex} "
            f"re-normalizes to {renormalized}",
        )
    resimplified = simplify(regex)
    if resimplified != regex:
        raise _violated(
            invariant,
            f"emitted expression is not simplification-idempotent: {regex} "
            f"re-simplifies to {resimplified}",
        )


def check_emitted_sore(regex: Regex, context: str = "idtd") -> None:
    """iDTD output must classify as a SORE in Claim 1 normal form."""
    from .regex.classify import is_sore

    if not is_sore(regex):
        raise _violated(
            f"{context}.emitted-sore",
            f"emitted expression is not a SORE: {regex}",
        )
    _check_normal_form(regex, f"{context}.normal-form")


def check_emitted_chare(regex: Regex, context: str = "crx") -> None:
    """CRX output must classify as a CHARE (hence also as a SORE)."""
    from .regex.classify import is_chare, is_sore

    if not is_chare(regex):
        raise _violated(
            f"{context}.emitted-chare",
            f"emitted expression is not a CHARE: {regex}",
        )
    if not is_sore(regex):
        raise _violated(
            f"{context}.classifier-agreement",
            f"classifiers disagree: {regex} is a CHARE but not a SORE",
        )


def check_content_model(regex: Regex, element: str) -> None:
    """Every DTD content model must be deterministic (one-unambiguous)."""
    from .regex.classify import is_deterministic

    if not is_deterministic(regex):
        raise _violated(
            "inference.deterministic-content-model",
            f"content model for element {element!r} is not one-unambiguous: "
            f"{regex}",
        )


def check_cached_content_model(
    cached: Regex, fresh: Regex, element: str
) -> None:
    """A cache hit must agree with a fresh run of the learner.

    The content-model cache (:mod:`repro.runtime.cache`) keys on a
    fingerprint of the merged learner state, which *should* determine
    the learner output exactly; under contracts every hit re-derives
    the expression and compares.  A mismatch means the fingerprint is
    missing an input the learner actually reads — an engine bug.
    """
    if cached != fresh:
        raise _violated(
            "cache.cached-vs-fresh-agreement",
            f"cached content model for element {element!r} ({cached}) "
            f"differs from a fresh derivation ({fresh}); the cache "
            "fingerprint does not cover every learner input",
        )


# -- degradation-report invariants (resilient runtime) ------------------------

#: The learner fallback steps the specificity ladder permits: SOREs
#: degrade to CHAREs, and either learner's last resort is ``ANY``.
_VALID_FALLBACK_STEPS = frozenset(
    {("idtd", "crx"), ("idtd", "any"), ("crx", "any")}
)


def check_degradation_report(report: DegradationReport, dtd: Dtd) -> None:
    """A degradation report must be consistent with the DTD it annotates.

    Quarantine entries carry a path and a cause (an unexplained skip is
    useless for triage); retried-shard entries are unique with sane
    counts; every fallback names an element that actually exists in
    the DTD, steps down the specificity ladder in a permitted
    direction, and — when it claims the element fell all the way to
    ``ANY`` — the DTD really does declare that element ``ANY``.
    """
    from .xmlio.dtd import Any as AnyContent

    for entry in report.quarantined:
        if not entry.path or not entry.cause:
            raise _violated(
                "resilience.quarantine-complete",
                f"quarantine entry missing path or cause: {entry!r}",
            )
    seen_shards = set()
    for retry in report.retried_shards:
        if retry.shard < 0 or retry.attempts < 1:
            raise _violated(
                "resilience.retry-sane",
                f"retry entry with impossible shard/attempts: {retry!r}",
            )
        if retry.shard in seen_shards:
            raise _violated(
                "resilience.retry-unique",
                f"shard {retry.shard} reported as retried more than once",
            )
        seen_shards.add(retry.shard)
    for fallback in report.fallbacks:
        if fallback.element not in dtd.elements:
            raise _violated(
                "resilience.fallback-element-exists",
                f"fallback for element {fallback.element!r} which the DTD "
                "does not declare",
            )
        step = (fallback.from_method, fallback.to_method)
        if step not in _VALID_FALLBACK_STEPS:
            raise _violated(
                "resilience.fallback-ordering",
                f"fallback {fallback.from_method!r} → "
                f"{fallback.to_method!r} for {fallback.element!r} is not a "
                "step down the SORE → CHARE → ANY ladder",
            )
        if fallback.to_method == "any" and not isinstance(
            dtd.elements[fallback.element], AnyContent
        ):
            raise _violated(
                "resilience.fallback-vs-dtd",
                f"report says element {fallback.element!r} fell back to ANY "
                f"but the DTD declares {dtd.elements[fallback.element]!r}",
            )


# -- streaming-fold invariants (Section 9) -----------------------------------


def _learner_fingerprint(
    evidence: StreamingEvidence,
) -> dict[str, tuple[object, ...]]:
    """The order-insensitive part of streaming evidence, per element.

    Text/attribute reservoirs are deliberately excluded: they keep the
    *first* ``SAMPLE_CAP`` values in corpus order, so they are ordered
    by design and only the learner states form a commutative monoid.
    """
    fingerprint: dict[str, tuple[object, ...]] = {}
    for name, element in evidence.elements.items():
        soa = element.soa.soa
        crx = element.crx.state
        fingerprint[name] = (
            frozenset(soa.symbols),
            frozenset(soa.initial),
            frozenset(soa.final),
            frozenset(soa.edges),
            soa.accepts_empty,
            frozenset(crx.arrows),
            frozenset(crx.alphabet),
            frozenset(crx.profiles.items()),
            crx.word_count,
            element.occurrences,
            element.nonempty_count,
            element.empty_count,
            element.has_text,
        )
    return fingerprint


def check_merge_commutative(
    left: StreamingEvidence, right: StreamingEvidence
) -> None:
    """Merging shard learner states must commute (the map-reduce law).

    Runs both merge orders on deep copies and compares the resulting
    learner states; the inputs are left untouched.
    """
    forward = copy.deepcopy(left)
    forward.merge(copy.deepcopy(right))
    backward = copy.deepcopy(right)
    backward.merge(copy.deepcopy(left))
    lhs, rhs = _learner_fingerprint(forward), _learner_fingerprint(backward)
    if lhs != rhs:
        differing = sorted(
            name
            for name in set(lhs) | set(rhs)
            if lhs.get(name) != rhs.get(name)
        )
        raise _violated(
            "parallel.merge-commutativity",
            "merging shard evidence in opposite orders produced different "
            f"learner states for elements {differing}",
        )
    if forward.document_count != backward.document_count:
        raise _violated(
            "parallel.merge-commutativity",
            "document counts disagree between merge orders",
        )


# -- checkpoint invariants (repro.ckpt) ---------------------------------------


def check_checkpoint_roundtrip(evidence: StreamingEvidence) -> None:
    """Encoding and decoding evidence must be the identity.

    The on-disk codec goes through canonical JSON, so the digest of a
    decoded state must equal the digest of the original — anything
    else means ``dehydrate``/``hydrate`` drop or distort a field and a
    resumed run would silently diverge from a fresh one.

    Imports lazily: contracts (layer 5) cannot eagerly depend on the
    checkpoint package (layer 7).
    """
    from .ckpt.codec import decode_state, encode_state, evidence_digest

    original = evidence_digest(evidence)
    restored = evidence_digest(decode_state(encode_state(evidence)))
    if original != restored:
        raise _violated(
            "ckpt.roundtrip-identity",
            f"evidence digest changed across encode/decode: {original[:16]} "
            f"!= {restored[:16]}; dehydrate/hydrate lose state",
        )


def check_checkpoint_resume(
    evidence: StreamingEvidence, paths: list[str]
) -> None:
    """Evidence assembled from cached shards must equal a fresh pass.

    Re-extracts the whole corpus serially (expensive — this is why
    contracts are opt-in) and compares canonical digests.  A mismatch
    means shard reuse changed the result: stale cache matching, wrong
    merge order, or reservoir divergence.
    """
    from .ckpt.codec import evidence_digest
    from .runtime.parallel import extract_from_paths

    cached = evidence_digest(evidence)
    fresh = evidence_digest(extract_from_paths(paths))
    if cached != fresh:
        raise _violated(
            "ckpt.resume-equals-fresh",
            f"checkpoint-assembled evidence ({cached[:16]}) differs from a "
            f"fresh serial pass ({fresh[:16]}) over the same {len(paths)} "
            "documents",
        )
