"""The rewrite system of Section 5: rules, the Figure 3 run, Theorem 1."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.gfa import GFA, SINK, SOURCE
from repro.automata.compare import soa_equivalent_to_regex
from repro.automata.soa import SOA
from repro.core.rewrite import (
    Application,
    all_applications,
    apply_application,
    find_application,
    rewrite,
    rewrite_gfa,
)
from repro.learning.tinf import tinf
from repro.regex.language import language_equivalent
from repro.regex.parser import parse_regex
from repro.regex.printer import to_paper_syntax

from ..conftest import build_random_sore, sores

FIGURE1_WORDS = [tuple(w) for w in ["bacacdacde", "cbacdbacde", "abccaadcde"]]


class TestFigure3:
    def test_exact_paper_output(self):
        result = rewrite(tinf(FIGURE1_WORDS))
        assert result.succeeded
        assert to_paper_syntax(result.regex) == "((b? (a + c))+ d)+ e"

    def test_first_step_is_optional_on_b(self):
        """The default priority reproduces step (1) of Figure 3."""
        gfa = GFA.from_soa(tinf(FIGURE1_WORDS))
        application = find_application(gfa)
        assert application.rule == "optional"
        (node,) = application.nodes
        assert str(gfa.labels[node]) == "b"

    def test_language_preserved(self):
        soa = tinf(FIGURE1_WORDS)
        result = rewrite(soa)
        assert soa_equivalent_to_regex(soa, result.regex)

    def test_step_trace_recorded(self):
        result = rewrite(tinf(FIGURE1_WORDS))
        rules = [step.rule for step in result.steps]
        assert rules[0] == "optional"
        assert "disjunction" in rules
        assert "concatenation" in rules
        assert "self_loop" in rules


class TestFailure:
    def test_figure2_has_no_equivalent_sore(self):
        words = [tuple(w) for w in ["bacacdacde", "cbacdbacde"]]
        result = rewrite(tinf(words))
        assert not result.succeeded
        assert result.regex is None
        assert result.gfa.nodes()  # the stuck GFA is exposed for iDTD


class TestIndividualRules:
    def test_self_loop(self):
        gfa = GFA.from_soa(
            SOA(symbols={"a"}, initial={"a"}, final={"a"}, edges={("a", "a")})
        )
        result = rewrite_gfa(gfa)
        assert result.regex == parse_regex("a+")

    def test_disjunction_without_loop(self):
        gfa = GFA.from_soa(
            SOA(symbols={"a", "b"}, initial={"a", "b"}, final={"a", "b"},
                edges=set())
        )
        assert rewrite_gfa(gfa).regex == parse_regex("a + b")

    def test_disjunction_with_loop(self):
        edges = {(x, y) for x in "ab" for y in "ab"}
        gfa = GFA.from_soa(
            SOA(symbols={"a", "b"}, initial={"a", "b"}, final={"a", "b"},
                edges=edges)
        )
        assert rewrite_gfa(gfa).regex == parse_regex("(a + b)+")

    def test_concatenation(self):
        gfa = GFA.from_soa(
            SOA(symbols={"a", "b"}, initial={"a"}, final={"b"},
                edges={("a", "b")})
        )
        assert rewrite_gfa(gfa).regex == parse_regex("a b")

    def test_optional_without_self_loop(self):
        gfa = GFA.from_soa(SOA.from_regex(parse_regex("a b? c")))
        assert rewrite_gfa(gfa).regex == parse_regex("a b? c")

    def test_star_via_contraction(self):
        gfa = GFA.from_soa(SOA.from_regex(parse_regex("a b* c")))
        assert rewrite_gfa(gfa).regex == parse_regex("a b* c")

    def test_plus_disjunction_mix(self):
        """a1+ + (a2 a3): merging a plus-like state with a chain."""
        soa = SOA.from_regex(parse_regex("a1+ + (a2 a3)"))
        result = rewrite(soa)
        assert result.succeeded
        assert language_equivalent(result.regex, parse_regex("a1+ + (a2 a3)"))

    def test_nullable_target(self):
        soa = SOA.from_regex(parse_regex("a? b?"))
        result = rewrite(soa)
        assert result.succeeded
        assert language_equivalent(result.regex, parse_regex("a? b?"))


class TestTheorem1Completeness:
    """rewrite recovers an equivalent SORE from the SOA of any SORE."""

    @settings(max_examples=60, deadline=None)
    @given(sores(max_symbols=7))
    def test_round_trip(self, expression):
        soa = SOA.from_regex(expression)
        result = rewrite(soa)
        assert result.succeeded, f"stuck on {to_paper_syntax(expression)}"
        assert language_equivalent(result.regex, expression)

    @settings(max_examples=30, deadline=None)
    @given(sores(max_symbols=6))
    def test_linear_output_size(self, expression):
        """SORE output is linear in the alphabet (each symbol once)."""
        result = rewrite(SOA.from_regex(expression))
        occurrences = result.regex.symbol_occurrences()
        assert all(count == 1 for count in occurrences.values())


class TestClaim2Confluence:
    """Any order of rule applications leads to an equivalent SORE."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=6),
    )
    def test_random_rule_order(self, sore_seed, order_seed, symbols):
        from repro.regex.normalize import normalize

        expression = normalize(
            build_random_sore(
                random.Random(sore_seed), [f"x{i}" for i in range(symbols)]
            )
        )
        soa = SOA.from_regex(expression)
        result = rewrite(soa, rng=random.Random(order_seed))
        assert result.succeeded
        assert language_equivalent(result.regex, expression)

    def test_alternative_order_on_figure1(self):
        """Disjunction-first yields the paper's ((b?(a+c)+)+d)+e variant."""
        soa = tinf(FIGURE1_WORDS)
        result = rewrite(
            soa, order=("disjunction", "self_loop", "concatenation", "optional")
        )
        assert result.succeeded
        assert language_equivalent(
            result.regex, parse_regex("((b? (a + c))+ d)+ e")
        )


class TestTermination:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_rewrite_terminates_on_arbitrary_soas(self, seed):
        rng = random.Random(seed)
        alphabet = [f"s{i}" for i in range(rng.randint(1, 6))]
        words = [
            tuple(rng.choice(alphabet) for _ in range(rng.randint(1, 8)))
            for _ in range(rng.randint(1, 10))
        ]
        result = rewrite(tinf(words))  # success or clean failure, no hang
        assert result.gfa is not None
