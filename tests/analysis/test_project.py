"""Tests for the whole-program model (:mod:`repro.analysis.project`).

Covers module naming, import-edge classification, alias-aware call
resolution (including the builtin-method denylist that keeps
``self._items.append`` from resolving to an unrelated project method),
thread/async root discovery, and — against the live tree — a golden
package-level import-graph snapshot that pins the layering the R010
table declares.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.project import (
    Project,
    dotted_text,
    module_name_for_path,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestModuleNaming:
    def test_src_anchor(self):
        path = Path("src/repro/core/inference.py")
        assert module_name_for_path(path) == "repro.core.inference"

    def test_repro_anchor_without_src(self):
        path = Path("checkout/repro/xmlio/parser.py")
        assert module_name_for_path(path) == "repro.xmlio.parser"

    def test_package_init_names_the_package(self):
        assert module_name_for_path(Path("src/repro/serve/__init__.py")) == (
            "repro.serve"
        )

    def test_bare_file_uses_the_stem(self):
        assert module_name_for_path(Path("/tmp/scratch.py")) == "scratch"


class TestDottedText:
    def test_name_and_attribute_chains(self):
        assert dotted_text(ast.parse("a", mode="eval").body) == "a"
        assert dotted_text(ast.parse("a.b.c", mode="eval").body) == "a.b.c"

    def test_non_chains_are_none(self):
        assert dotted_text(ast.parse("f().x", mode="eval").body) is None
        assert dotted_text(ast.parse("(a or b).x", mode="eval").body) is None


class TestImportEdges:
    def test_kind_classification(self):
        project = Project.from_sources(
            {
                "repro.a": "X = 1\n",
                "repro.b": "Y = 2\n",
                "repro.c": "Z = 3\n",
                "repro.top": (
                    "from typing import TYPE_CHECKING\n"
                    "import repro.a\n"
                    "if TYPE_CHECKING:\n"
                    "    import repro.b\n"
                    "def f():\n"
                    "    import repro.c\n"
                ),
            }
        )
        kinds = {
            (e.src, e.dst): e.kind
            for e in project.import_edges
            if e.src == "repro.top"
        }
        assert kinds[("repro.top", "repro.a")] == "eager"
        assert kinds[("repro.top", "repro.b")] == "type_checking"
        assert kinds[("repro.top", "repro.c")] == "lazy"

    def test_relative_imports_resolve(self):
        project = Project.from_sources(
            {
                "repro.pkg.mod": "VALUE = 1\n",
                "repro.pkg.user": "from .mod import VALUE\n",
                "repro.other": "from .pkg import mod\n"
                if False
                else "from .pkg.mod import VALUE\n",
            }
        )
        pairs = {(e.src, e.dst) for e in project.import_edges}
        assert ("repro.pkg.user", "repro.pkg.mod") in pairs
        assert ("repro.other", "repro.pkg.mod") in pairs

    def test_duplicate_imports_record_one_edge(self):
        project = Project.from_sources(
            {
                "repro.a": "X = 1\nY = 2\n",
                "repro.b": "from repro.a import X, Y\n",
            }
        )
        edges = [
            e
            for e in project.import_edges
            if (e.src, e.dst) == ("repro.b", "repro.a")
        ]
        assert len(edges) == 1


class TestCallResolution:
    def test_alias_resolves_to_definition(self):
        project = Project.from_sources(
            {
                "repro.lib": "def work():\n    pass\n",
                "repro.use": (
                    "from repro.lib import work as w\n"
                    "def caller():\n    w()\n"
                ),
            }
        )
        assert "repro.lib:work" in project.call_graph.successors(
            "repro.use:caller"
        )

    def test_self_method_resolves_within_class(self):
        project = Project.from_sources(
            {
                "repro.m": (
                    "class A:\n"
                    "    def outer(self):\n"
                    "        self.inner()\n"
                    "    def inner(self):\n"
                    "        pass\n"
                    "class B:\n"
                    "    def inner(self):\n"
                    "        pass\n"
                ),
            }
        )
        succ = project.call_graph.successors("repro.m:A.outer")
        assert succ == ["repro.m:A.inner"]

    def test_builtin_method_names_never_fall_back(self):
        # `self._items.append(...)` is a list append, not a call to the
        # unrelated project method named `append`; the denylist keeps
        # that false edge (and the async/lock findings it would drag
        # in) out of the graph.
        project = Project.from_sources(
            {
                "repro.m": (
                    "class Store:\n"
                    "    def append(self, item):\n"
                    "        pass\n"
                    "class User:\n"
                    "    def __init__(self):\n"
                    "        self._items = []\n"
                    "    def push(self, item):\n"
                    "        self._items.append(item)\n"
                ),
            }
        )
        assert project.call_graph.successors("repro.m:User.push") == []

    def test_unique_method_name_falls_back(self):
        project = Project.from_sources(
            {
                "repro.m": (
                    "class Pool:\n"
                    "    def heal(self):\n"
                    "        pass\n"
                    "def use(pool):\n"
                    "    pool.heal()\n"
                ),
            }
        )
        assert project.call_graph.successors("repro.m:use") == [
            "repro.m:Pool.heal"
        ]


class TestExecutionDomains:
    def test_async_defs_are_async_roots(self):
        project = Project.from_sources(
            {
                "repro.m": (
                    "async def handler():\n    pass\n"
                    "def plain():\n    pass\n"
                ),
            }
        )
        assert project.async_roots == ["repro.m:handler"]

    def test_thread_target_becomes_thread_root(self):
        project = Project.from_sources(
            {
                "repro.m": (
                    "import threading\n"
                    "def worker():\n    pass\n"
                    "def start():\n"
                    "    threading.Thread(target=worker).start()\n"
                ),
            }
        )
        assert "repro.m:worker" in project.thread_roots

    def test_executor_hop_breaks_the_call_edge(self):
        # run_in_executor moves `blocking` off the loop: it becomes a
        # thread root and must NOT appear as a call-graph successor of
        # the async caller (otherwise R006 would flag code that was
        # correctly moved off the loop).
        project = Project.from_sources(
            {
                "repro.m": (
                    "import asyncio\n"
                    "def blocking():\n    pass\n"
                    "async def handler():\n"
                    "    loop = asyncio.get_running_loop()\n"
                    "    await loop.run_in_executor(None, blocking)\n"
                ),
            }
        )
        assert "repro.m:blocking" in project.thread_roots
        assert project.call_graph.successors("repro.m:handler") == []
        assert "repro.m:blocking" not in project.loop_closure()

    def test_loop_callbacks_stay_call_edges(self):
        project = Project.from_sources(
            {
                "repro.m": (
                    "def on_done(fut):\n    pass\n"
                    "async def handler(fut):\n"
                    "    fut.add_done_callback(on_done)\n"
                ),
            }
        )
        assert "repro.m:on_done" in project.call_graph.successors(
            "repro.m:handler"
        )
        assert "repro.m:on_done" in project.loop_closure()


class TestSubclasses:
    def test_closure_over_intermediate_bases(self):
        project = Project.from_sources(
            {
                "repro.e": (
                    "class Root(Exception):\n    pass\n"
                    "class Mid(Root):\n    pass\n"
                    "class Leaf(Mid):\n    pass\n"
                    "class Other(Exception):\n    pass\n"
                ),
            }
        )
        closure = project.subclasses_of(["repro.e:Root"])
        assert closure == {"repro.e:Root", "repro.e:Mid", "repro.e:Leaf"}


@pytest.fixture(scope="module")
def live_project() -> Project:
    return Project.from_paths([REPO_ROOT / "src" / "repro"])


def top_package(module: str) -> str:
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else parts[0]


#: Golden snapshot: every cross-package *eager* import edge the live
#: tree is allowed to have, condensed to top-level packages.  A new
#: cross-package dependency must be added here deliberately (and must
#: satisfy the R010 layer table, which the analyzer enforces).
GOLDEN_PACKAGE_EDGES = frozenset(
    {
        ("repro", "repro.api"),
        ("repro", "repro.automata"),
        ("repro", "repro.core"),
        ("repro", "repro.learning"),
        ("repro", "repro.regex"),
        ("repro", "repro.runtime"),
        ("repro", "repro.xmlio"),
        ("repro.__main__", "repro.cli"),
        ("repro.analysis", "repro.errors"),
        ("repro.analysis", "repro.fsio"),
        ("repro.ckpt", "repro.contracts"),
        ("repro.ckpt", "repro.errors"),
        ("repro.ckpt", "repro.fsio"),
        ("repro.ckpt", "repro.learning"),
        ("repro.ckpt", "repro.obs"),
        ("repro.ckpt", "repro.runtime"),
        ("repro.api", "repro.contracts"),
        ("repro.api", "repro.core"),
        ("repro.api", "repro.errors"),
        ("repro.api", "repro.learning"),
        ("repro.api", "repro.obs"),
        ("repro.api", "repro.xmlio"),
        ("repro.automata", "repro.errors"),
        ("repro.automata", "repro.obs"),
        ("repro.automata", "repro.regex"),
        ("repro.baselines", "repro.automata"),
        ("repro.baselines", "repro.errors"),
        ("repro.baselines", "repro.learning"),
        ("repro.baselines", "repro.regex"),
        ("repro.cli", "repro.api"),
        ("repro.cli", "repro.contracts"),
        ("repro.cli", "repro.core"),
        ("repro.cli", "repro.errors"),
        ("repro.cli", "repro.obs"),
        ("repro.cli", "repro.regex"),
        ("repro.cli", "repro.xmlio"),
        ("repro.contracts", "repro.errors"),
        ("repro.core", "repro.automata"),
        ("repro.core", "repro.contracts"),
        ("repro.core", "repro.errors"),
        ("repro.core", "repro.learning"),
        ("repro.core", "repro.obs"),
        ("repro.core", "repro.regex"),
        ("repro.core", "repro.xmlio"),
        ("repro.datagen", "repro.errors"),
        ("repro.datagen", "repro.regex"),
        ("repro.datagen", "repro.xmlio"),
        ("repro.evaluation", "repro.core"),
        ("repro.evaluation", "repro.datagen"),
        ("repro.evaluation", "repro.learning"),
        ("repro.evaluation", "repro.regex"),
        ("repro.learning", "repro.automata"),
        ("repro.learning", "repro.contracts"),
        ("repro.learning", "repro.core"),
        ("repro.learning", "repro.errors"),
        ("repro.learning", "repro.obs"),
        ("repro.learning", "repro.regex"),
        ("repro.learning", "repro.xmlio"),
        ("repro.regex", "repro.errors"),
        ("repro.runtime", "repro.contracts"),
        ("repro.runtime", "repro.core"),
        ("repro.runtime", "repro.errors"),
        ("repro.runtime", "repro.learning"),
        ("repro.runtime", "repro.obs"),
        ("repro.runtime", "repro.regex"),
        ("repro.runtime", "repro.xmlio"),
        ("repro.serve", "repro.api"),
        ("repro.serve", "repro.errors"),
        ("repro.serve", "repro.obs"),
        ("repro.xmlio", "repro.errors"),
        ("repro.xmlio", "repro.obs"),
        ("repro.xmlio", "repro.regex"),
    }
)


class TestLiveTreeSnapshot:
    def test_package_level_import_graph_matches_golden(self, live_project):
        actual = {
            (top_package(e.src), top_package(e.dst))
            for e in live_project.import_edges
            if e.kind == "eager"
            and top_package(e.src) != top_package(e.dst)
        }
        added = actual - GOLDEN_PACKAGE_EDGES
        removed = GOLDEN_PACKAGE_EDGES - actual
        assert not added, f"new cross-package eager imports: {sorted(added)}"
        assert not removed, f"stale golden edges: {sorted(removed)}"

    def test_no_eager_xmlio_to_learning_edge(self, live_project):
        # The evidence move's whole point: the XML substrate no longer
        # eagerly imports the learning layer (the compat shims cross
        # lazily).
        offending = [
            (e.src, e.dst)
            for e in live_project.import_edges
            if e.kind == "eager"
            and e.src.startswith("repro.xmlio")
            and e.dst.startswith("repro.learning")
        ]
        assert offending == []

    def test_serve_eagerly_imports_only_the_facade(self, live_project):
        allowed = ("repro.api", "repro.errors", "repro.obs", "repro.serve")
        offending = [
            (e.src, e.dst)
            for e in live_project.import_edges
            if e.kind == "eager"
            and e.src.startswith("repro.serve")
            and not e.dst.startswith(allowed)
        ]
        assert offending == []

    def test_eager_import_graph_is_acyclic(self, live_project):
        assert live_project.eager_import_graph().cycles() == []

    def test_stats_shape(self, live_project):
        stats = live_project.stats()
        assert stats["modules"] > 50
        assert stats["functions"] > 500
        assert stats["call_edges"] > 1000
        assert stats["async_roots"] >= 1
        assert stats["thread_roots"] >= 1
