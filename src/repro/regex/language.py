"""Decision procedures on the languages denoted by regular expressions.

Two stepping engines back everything here:

* Inter-free expressions compile to a Glushkov automaton and run
  through an on-the-fly subset construction, which is cheap for the
  expression sizes that occur in DTDs (the paper's largest has 61
  symbols).
* Expressions containing interleaving (``&``) have no position
  automaton, so their states are Brzozowski derivative expressions in
  canonical form.  Shuffle products can blow up, so derivative-state
  exploration is bounded: past :data:`_INTER_STATE_CAP` distinct states
  a query raises :class:`InterleavingBudgetError` rather than running
  without bound — inclusion over ``&`` is decided within that budget.

Words are sequences of element names (``tuple[str, ...]`` or
``list[str]``), *not* character strings: DTD content models speak about
children element sequences.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache
from collections.abc import Iterator, Sequence

from ..errors import CorpusError
from .ast import Inter, Regex
from .derivatives import EMPTY, derive, lifted_nullable, matches_by_derivatives
from .glushkov import Glushkov, glushkov
from .normalize import canonical

# A deterministic state of the on-the-fly subset construction: the
# frozen set of Glushkov positions we may be in.  ``None`` is the start
# state (no symbol consumed yet).
_State = frozenset | None

#: Distinct derivative states a single interleaving query may explore.
_INTER_STATE_CAP = 20_000


class InterleavingBudgetError(CorpusError):
    """An interleaving decision procedure exceeded its state budget.

    Shuffle languages are regular, but the derivative state space of a
    product query grows with the number of interleaved branches; rather
    than loop for minutes on adversarial expressions, queries give up
    past :data:`_INTER_STATE_CAP` distinct states.
    """


@lru_cache(maxsize=4096)
def _automaton(regex: Regex) -> Glushkov:
    return glushkov(regex)


@lru_cache(maxsize=4096)
def _contains_inter(regex: Regex) -> bool:
    return any(isinstance(node, Inter) for node in regex.walk())


def _step(automaton: Glushkov, state: _State, symbol: str) -> frozenset:
    if state is None:
        return frozenset(
            p for p in automaton.first if automaton.labels[p] == symbol
        )
    return frozenset(
        q
        for p in state
        for q in automaton.follow[p]
        if automaton.labels[q] == symbol
    )

def _accepting(automaton: Glushkov, state: _State) -> bool:
    if state is None:
        return automaton.nullable
    return any(p in automaton.last for p in state)


class _GlushkovEngine:
    """Stepping engine over the position automaton (Inter-free input)."""

    __slots__ = ("_automaton", "alphabet")

    def __init__(self, regex: Regex) -> None:
        self._automaton = _automaton(regex)
        self.alphabet: list[str] = sorted(set(self._automaton.labels))

    def start(self) -> object:
        return None

    def step(self, state: object, symbol: str) -> object:
        assert state is None or isinstance(state, frozenset)
        return _step(self._automaton, state, symbol)

    def accepting(self, state: object) -> bool:
        assert state is None or isinstance(state, frozenset)
        return _accepting(self._automaton, state)

    def alive(self, state: object) -> bool:
        return state is None or bool(state)


class _DerivativeEngine:
    """Stepping engine over canonical derivative expressions.

    States are the lifted expressions of :mod:`repro.regex.derivatives`
    (a ``Regex``, or the ε/∅ markers).  Regex states are put in
    canonical form so that derivation-order noise (option ordering
    inside unions) does not multiply the state space.  The engine
    counts distinct states per *instance*; construct one per query.
    """

    __slots__ = ("alphabet", "_start", "_seen")

    def __init__(self, regex: Regex) -> None:
        self.alphabet: list[str] = sorted(regex.alphabet())
        self._start: object = canonical(regex)
        self._seen: set[object] = {self._start}

    def start(self) -> object:
        return self._start

    def step(self, state: object, symbol: str) -> object:
        derived = derive(state, symbol)
        if isinstance(derived, Regex):
            derived = canonical(derived)
        if derived not in self._seen:
            self._seen.add(derived)
            if len(self._seen) > _INTER_STATE_CAP:
                raise InterleavingBudgetError(
                    "interleaving query exceeded "
                    f"{_INTER_STATE_CAP} derivative states"
                )
        return derived

    def accepting(self, state: object) -> bool:
        return lifted_nullable(state)

    def alive(self, state: object) -> bool:
        return state is not EMPTY


_Engine = _GlushkovEngine | _DerivativeEngine


def _engine(regex: Regex) -> _Engine:
    if _contains_inter(regex):
        return _DerivativeEngine(regex)
    return _GlushkovEngine(regex)


def matches(regex: Regex, word: Sequence[str]) -> bool:
    """Does ``word`` (a sequence of element names) belong to ``L(regex)``?"""
    if _contains_inter(regex):
        return matches_by_derivatives(regex, word)
    return _automaton(regex).accepts(word)


def counterexample(
    narrower: Regex, wider: Regex
) -> tuple[str, ...] | None:
    """A shortest word in ``L(narrower) \\ L(wider)``, or ``None``.

    ``None`` therefore means ``L(narrower) ⊆ L(wider)``.
    """
    left = _engine(narrower)
    right = _engine(wider)
    alphabet = left.alphabet
    start = (left.start(), right.start())
    seen: set[tuple[object, object]] = {start}
    queue: deque[tuple[object, object, tuple[str, ...]]] = deque(
        [(*start, ())]
    )
    while queue:
        left_state, right_state, word = queue.popleft()
        if left.accepting(left_state) and not right.accepting(right_state):
            return word
        for symbol in alphabet:
            next_left = left.step(left_state, symbol)
            if not left.alive(next_left):
                continue  # dead on the left: nothing to witness
            next_right = right.step(right_state, symbol)
            key = (next_left, next_right)
            if key not in seen:
                seen.add(key)
                queue.append((next_left, next_right, word + (symbol,)))
    return None


@lru_cache(maxsize=16384)
def _included_cached(narrower: Regex, wider: Regex) -> bool:
    return counterexample(narrower, wider) is None


def language_included(narrower: Regex, wider: Regex) -> bool:
    """``L(narrower) ⊆ L(wider)``.

    Memoized: expression nodes are frozen and hashable, and inclusion
    queries repeat heavily during generalization search, so the verdict
    (a single bool, not the counterexample word) sits behind an LRU.
    """
    return _included_cached(narrower, wider)


def language_equivalent(first: Regex, second: Regex) -> bool:
    """``L(first) = L(second)``.  Memoized via :func:`language_included`."""
    return language_included(first, second) and language_included(second, first)


def language_cache_info() -> dict[str, dict[str, int]]:
    """Hit/miss/size statistics for the language-level LRUs.

    Keys: ``automaton`` (the Glushkov construction cache) and
    ``inclusion`` (the memoized inclusion verdicts).  The API layer
    diffs these around an inference run to surface ``--stats``
    counters without threading a recorder through pure functions.
    """
    info: dict[str, dict[str, int]] = {}
    for name, fn in (("automaton", _automaton), ("inclusion", _included_cached)):
        stats = fn.cache_info()
        info[name] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "entries": stats.currsize,
            "maxsize": stats.maxsize or 0,
        }
    return info


def clear_language_caches() -> None:
    """Drop the language-level LRUs (explicit invalidation hook)."""
    _automaton.cache_clear()
    _included_cached.cache_clear()
    _contains_inter.cache_clear()


def enumerate_words(
    regex: Regex, max_length: int, limit: int | None = None
) -> Iterator[tuple[str, ...]]:
    """Yield the words of ``L(regex)`` of length at most ``max_length``.

    Words are produced in shortlex order (shortest first, symbols in
    sorted order), which makes the output deterministic — handy as a
    brute-force oracle in tests.  ``limit`` caps the number of words
    *before* anything is yielded: ``limit=0`` yields nothing,
    ``limit=1`` yields exactly the shortest word, ``limit=None`` (the
    default) enumerates everything up to ``max_length``.
    """
    if limit is not None and limit <= 0:
        return
    engine = _engine(regex)
    alphabet = engine.alphabet
    produced = 0
    queue: deque[tuple[object, tuple[str, ...]]] = deque([(engine.start(), ())])
    while queue:
        state, word = queue.popleft()
        if engine.accepting(state):
            yield word
            produced += 1
            if limit is not None and produced >= limit:
                return
        if len(word) >= max_length:
            continue
        for symbol in alphabet:
            next_state = engine.step(state, symbol)
            if engine.alive(next_state):
                queue.append((next_state, word + (symbol,)))
    return
