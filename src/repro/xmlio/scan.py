"""Bulk-scanning tokenizer primitives for the XML parser.

The original tokenizer stepped through the document one character at a
time — a Python-level loop iteration (often several) per input byte.
This module replaces that with *run-based* scanning so the per-byte
work happens inside CPython's C primitives instead:

* ``str.find`` jumps over text runs, comments, CDATA sections and
  processing instructions in one call each;
* a precompiled regex dispatch table recognises whole start tags
  (name + each attribute + the ``>``/``/>`` close), end tags, names
  and whitespace runs in a handful of C-level matches;
* entity decoding runs only on chunks that actually contain ``&``
  (one ``in`` scan), so plain text is kept as a zero-copy slice;
* the fast paths cover the ASCII grammar that real corpora are made
  of; anything exotic (Unicode names, malformed markup) falls back to
  the original character-level routines, which also own every error
  message — fast and slow paths therefore fail at identical positions
  with identical causes.

Conformance notes (XML 1.0, fixed here after living as bugs in the
character-level tokenizer):

* §2.11: ``\\r\\n`` and lone ``\\r`` are normalized to ``\\n`` before
  parsing (:func:`normalize_newlines`), so CRLF and LF checkouts of
  the same corpus yield identical text chunks.  Character references
  (``&#13;``) are expanded *after* normalization and can still insert
  a literal carriage return, exactly as the spec intends.
* §2.2: character references must name XML ``Char`` code points; NUL,
  surrogates and other non-Chars raise :class:`XmlSyntaxError` instead
  of injecting invalid characters into the tree (:func:`charref`).
* §2.3: the ``S`` production is exactly space/tab/CR/LF.  The old
  ``str.isspace`` accepted any Unicode whitespace (U+00A0, U+2028, …),
  silently blessing non-well-formed documents.
* §2.8: the DOCTYPE internal subset is scanned declaration by
  declaration (:func:`scan_internal_subset`), so a ``]`` inside a
  comment or quoted literal no longer truncates the subset.
* §3.3.3: attribute values get CDATA normalization — literal
  whitespace becomes a space, character references keep theirs
  (:func:`normalize_attribute_value`) — matching what expat does for
  undeclared attributes.
"""

from __future__ import annotations

import re

from ..errors import CorpusError

#: XML 1.0 §2.3 ``S`` production — the *only* whitespace the grammar
#: accepts between tokens.  Deliberately not ``str.isspace()``.
XML_WHITESPACE = " \t\r\n"

_PREDEFINED = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "apos": "'",
    "quot": '"',
}

# -- the regex dispatch table -------------------------------------------------
#
# Every pattern is anchored with ``match`` at the current position and
# deliberately ASCII-only for names: the Unicode name characters the
# slow path accepts (via str.isalpha/isalnum) cannot be replicated
# exactly by a regex class, so non-ASCII names simply miss the fast
# path and take the character-level route instead.

#: A whitespace run (XML ``S+``).
_WS_RUN = re.compile(r"[ \t\r\n]+")

#: An ASCII name: the common case of ``Name`` in real corpora.
_NAME_ASCII = re.compile(r"[A-Za-z_:][A-Za-z0-9_:.\-]*")

#: One attribute: optional leading whitespace (the slow path tolerates
#: zero), name, ``=`` with optional surrounding whitespace, and a
#: quoted value.  Values exclude ``<`` so an unterminated quote cannot
#: drag the match across tag boundaries (the slow path then reports
#: the precise error).
_ATTRIBUTE = re.compile(
    r"[ \t\r\n]*([A-Za-z_:][A-Za-z0-9_:.\-]*)[ \t\r\n]*="
    r"[ \t\r\n]*(?:\"([^<\"]*)\"|'([^<']*)')"
)

#: The end of a start tag: optional whitespace then ``>`` or ``/>``.
#: Only consulted when the cheap single-character checks in
#: :func:`scan_start_tag` (bare ``>`` / ``/>`` right after the last
#: token) missed, i.e. when there is whitespace before the close.
_TAG_CLOSE = re.compile(r"[ \t\r\n]*(/?)>")

#: A complete end tag ``</name >`` with an ASCII name.
_END_TAG = re.compile(r"</([A-Za-z_:][A-Za-z0-9_:.\-]*)[ \t\r\n]*>")

#: Internal-subset top level: the next ``]`` (end of subset) or ``<``
#: (start of a declaration, comment or PI).
_SUBSET_DELIM = re.compile(r"[\]<]")

#: Inside a markup declaration: the closing ``>`` or a quote opening a
#: literal that may hide ``]`` or ``>``.
_DECL_DELIM = re.compile(r"[>'\"]")


class XmlSyntaxError(CorpusError):
    """Raised on malformed XML, with line/column information."""

    def __init__(self, message: str, text: str, position: int) -> None:
        line = text.count("\n", 0, position) + 1
        column = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


def is_name_start(char: str) -> bool:
    return char.isalpha() or char in "_:"


def is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_:.-"


def normalize_attribute_value(value: str) -> str:
    """XML 1.0 §3.3.3 attribute-value normalization (CDATA type).

    Literal whitespace characters in an attribute value become spaces;
    character references (``&#9;``, ``&#10;``) are exempt, which is
    why this runs *before* entity decoding.  Undeclared attributes are
    CDATA — the same default expat applies.  ``\\r`` is handled for
    scanners fed raw text directly; :func:`normalize_newlines` has
    already folded it away on the :func:`parse_document` path.
    """
    if "\n" in value or "\t" in value:
        value = value.replace("\n", " ").replace("\t", " ")
    if "\r" in value:
        value = value.replace("\r", " ")
    return value


def normalize_newlines(text: str) -> str:
    """XML 1.0 §2.11 end-of-line handling.

    ``\\r\\n`` and lone ``\\r`` become ``\\n`` before any other
    processing, so line endings never leak into text chunks, attribute
    values or datatype evidence.  The guard makes the (overwhelmingly
    common) LF-only case a single C-level ``memchr`` scan with no copy.
    """
    if "\r" not in text:
        return text
    return text.replace("\r\n", "\n").replace("\r", "\n")


class Scanner:
    """Position-tracking cursor over the document text.

    The grammar driver (:mod:`repro.xmlio.parser`) owns *what* to
    parse; the scanner owns *how far* each token reaches, using the
    bulk primitives above wherever the input allows.
    """

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self.text, self.pos)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, count: int = 1) -> str:
        return self.text[self.pos : self.pos + count]

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.text.startswith(token, self.pos):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        """Skip an XML ``S`` run (space/tab/CR/LF — §2.3, nothing more)."""
        match = _WS_RUN.match(self.text, self.pos)
        if match is not None:
            self.pos = match.end()

    def read_name(self) -> str:
        match = _NAME_ASCII.match(self.text, self.pos)
        if match is None:
            return self._read_name_slow()
        end = match.end()
        if end < self.length and is_name_char(self.text[end]):
            # The name continues with a non-ASCII name character the
            # regex class cannot express; re-read it character-level.
            return self._read_name_slow()
        self.pos = end
        return match.group()

    def _read_name_slow(self) -> str:
        text = self.text
        start = self.pos
        if self.eof() or not is_name_start(text[start]):
            raise self.error("expected a name")
        pos = start + 1
        while pos < self.length and is_name_char(text[pos]):
            pos += 1
        self.pos = pos
        return text[start:pos]

    def read_until(self, token: str, error: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(error)
        value = self.text[self.pos : end]
        self.pos = end + len(token)
        return value


def decode_entities(raw: str, scanner: Scanner) -> str:
    """Expand references in ``raw``; zero-copy when there are none."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    index = 0
    length = len(raw)
    while index < length:
        amp = raw.find("&", index)
        if amp < 0:
            out.append(raw[index:])
            break
        if amp > index:
            out.append(raw[index:amp])
        end = raw.find(";", amp)
        if end < 0:
            raise scanner.error("unterminated entity reference")
        entity = raw[amp + 1 : end]
        if entity.startswith(("#x", "#X")):
            out.append(charref(entity[2:], 16, scanner))
        elif entity.startswith("#"):
            out.append(charref(entity[1:], 10, scanner))
        elif entity in _PREDEFINED:
            out.append(_PREDEFINED[entity])
        else:
            # Unknown general entity: keep it verbatim.  Real corpora
            # (the paper's XHTML crawl!) are full of undeclared
            # entities; losing the document over one would be worse
            # than keeping the reference as text.
            out.append(f"&{entity};")
        index = end + 1
    return "".join(out)


def _is_xml_char(code_point: int) -> bool:
    """XML 1.0 §2.2 ``Char``: tab/LF/CR, BMP minus surrogates and the
    two non-characters, and the supplementary planes."""
    return (
        0x20 <= code_point <= 0xD7FF
        or code_point in (0x9, 0xA, 0xD)
        or 0xE000 <= code_point <= 0xFFFD
        or 0x10000 <= code_point <= 0x10FFFF
    )


def charref(digits: str, base: int, scanner: Scanner) -> str:
    try:
        code_point = int(digits, base)
    except ValueError as exc:
        raise scanner.error(f"invalid character reference &#{digits};") from exc
    if not _is_xml_char(code_point):
        # NUL, surrogates, #xFFFE/#xFFFF, out-of-range: not a Char
        # (§2.2), so the reference is a well-formedness error — it must
        # not inject an invalid character into the tree.
        raise scanner.error(f"invalid character reference &#{digits};")
    return chr(code_point)


# -- tag-level scanning -------------------------------------------------------


def scan_start_tag(scanner: Scanner) -> tuple[str, dict[str, str], bool]:
    """Consume ``<name a='v' …>`` or ``… />`` at the current position.

    Returns ``(name, attributes, self_closed)``.  The whole tag is
    recognised by anchored regex matches — one for the name, one per
    attribute, one for the close — and *nothing is committed* until
    the close matches; any miss (Unicode names, unquoted values,
    duplicate attributes, stray characters) re-parses the tag from
    ``<`` with the character-level path so errors keep their exact
    historical positions and messages.
    """
    text = scanner.text
    start = scanner.pos  # text[start] == "<"
    match = _NAME_ASCII.match(text, start + 1)
    if match is None:
        # Unicode name start, or malformed markup: the character-level
        # path accepts the former and raises the historical error for
        # the latter.
        return _slow_start_tag(scanner, start)
    pos = match.end()
    # The two dominant shapes close immediately after the name; both
    # are settled with single-character comparisons, no further regex.
    char = text[pos : pos + 1]
    if char == ">":
        scanner.pos = pos + 1
        return match.group(), {}, False
    if char == "/" and text.startswith(">", pos + 1):
        scanner.pos = pos + 2
        return match.group(), {}, True
    if char > "\x7f" and is_name_char(char):
        # The name continues with a non-ASCII name character the regex
        # class cannot express; re-read the whole tag character-level.
        return _slow_start_tag(scanner, start)
    name = match.group()
    attributes: dict[str, str] = {}
    while True:
        attr = _ATTRIBUTE.match(text, pos)
        if attr is None:
            break
        attr_name = attr.group(1)
        if attr_name in attributes:
            return _slow_start_tag(scanner, start)
        value = attr.group(2)
        if value is None:
            value = attr.group(3)
        pos = attr.end()
        value = normalize_attribute_value(value)
        if "&" in value:
            scanner.pos = pos  # error position: just past the value
            value = decode_entities(value, scanner)
        attributes[attr_name] = value
        char = text[pos : pos + 1]
        if char == ">":
            scanner.pos = pos + 1
            return name, attributes, False
        if char == "/" and text.startswith(">", pos + 1):
            scanner.pos = pos + 2
            return name, attributes, True
    close = _TAG_CLOSE.match(text, pos)
    if close is None:
        return _slow_start_tag(scanner, start)
    scanner.pos = close.end()
    return name, attributes, close.group(1) == "/"


def _slow_start_tag(
    scanner: Scanner, start: int
) -> tuple[str, dict[str, str], bool]:
    scanner.pos = start
    scanner.expect("<")
    name = scanner.read_name()
    attributes = _parse_attributes(scanner)
    scanner.skip_whitespace()
    if scanner.startswith("/>"):
        scanner.pos += 2
        return name, attributes, True
    scanner.expect(">")
    return name, attributes, False


def _parse_attributes(scanner: Scanner) -> dict[str, str]:
    attributes: dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        if scanner.eof() or scanner.peek() in (">", "/", "?"):
            return attributes
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise scanner.error("attribute value must be quoted")
        scanner.pos += 1
        value = scanner.read_until(quote, "unterminated attribute value")
        if name in attributes:
            raise scanner.error(f"duplicate attribute {name!r}")
        attributes[name] = decode_entities(
            normalize_attribute_value(value), scanner
        )


def scan_end_tag(scanner: Scanner, expected: str) -> None:
    """Consume ``</expected >`` at the current position (``</`` ahead).

    A mismatched or exotic end tag re-reads character-level so the
    "mismatched end tag" error carries the historical position (just
    past the closing name, before any whitespace or ``>``).
    """
    text = scanner.text
    name_start = scanner.pos + 2
    name_end = name_start + len(expected)
    # Dominant shape: ``</expected>`` verbatim — two C-level substring
    # checks settle it (the second also proves the closing name does
    # not continue past ``expected``).
    if text.startswith(expected, name_start) and text.startswith(
        ">", name_end
    ):
        scanner.pos = name_end + 1
        return
    match = _END_TAG.match(text, scanner.pos)
    if match is not None and match.group(1) == expected:
        scanner.pos = match.end()
        return
    scanner.pos += 2
    closing = scanner.read_name()
    if closing != expected:
        raise scanner.error(
            f"mismatched end tag </{closing}> for <{expected}>"
        )
    scanner.skip_whitespace()
    scanner.expect(">")


def scan_internal_subset(scanner: Scanner) -> str:
    """Read the DOCTYPE internal subset up to its *matching* ``]``.

    The scanner sits just past the opening ``[``; on return it sits
    just past the closing ``]`` and the subset text between the two is
    returned verbatim.  Unlike a bare ``find("]")``, this walks the
    subset's actual structure — comments, processing instructions and
    markup declarations (whose quoted literals may contain ``]``) —
    so ``<!ATTLIST a b CDATA "x]y">`` no longer truncates the subset
    and leaves garbage to be reparsed as document content.
    """
    text = scanner.text
    start = scanner.pos
    pos = start
    while True:
        delim = _SUBSET_DELIM.search(text, pos)
        if delim is None:
            scanner.pos = start
            raise scanner.error("unterminated internal subset")
        pos = delim.start()
        if text[pos] == "]":
            scanner.pos = pos + 1
            return text[start:pos]
        if text.startswith("<!--", pos):
            end = text.find("-->", pos + 4)
            if end < 0:
                scanner.pos = pos + 4
                raise scanner.error("unterminated comment")
            pos = end + 3
        elif text.startswith("<?", pos):
            end = text.find("?>", pos + 2)
            if end < 0:
                scanner.pos = pos + 2
                raise scanner.error("unterminated processing instruction")
            pos = end + 2
        else:
            pos = _scan_markup_declaration(scanner, pos)


def _scan_markup_declaration(scanner: Scanner, pos: int) -> int:
    """Skip one ``<…>`` declaration inside the internal subset,
    honouring quoted literals; returns the position past its ``>``."""
    text = scanner.text
    opened = pos
    pos += 1
    while True:
        delim = _DECL_DELIM.search(text, pos)
        if delim is None:
            scanner.pos = opened
            raise scanner.error(
                "unterminated markup declaration in internal subset"
            )
        pos = delim.start()
        char = text[pos]
        if char == ">":
            return pos + 1
        end = text.find(char, pos + 1)
        if end < 0:
            scanner.pos = pos
            raise scanner.error("unterminated literal in internal subset")
        pos = end + 1


__all__ = [
    "Scanner",
    "XML_WHITESPACE",
    "XmlSyntaxError",
    "charref",
    "decode_entities",
    "is_name_char",
    "is_name_start",
    "normalize_attribute_value",
    "normalize_newlines",
    "scan_end_tag",
    "scan_internal_subset",
    "scan_start_tag",
]
