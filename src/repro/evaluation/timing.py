"""Wall-clock measurement helpers for the Section 8.3 experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable
from typing import TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Timed:
    """A result together with how long it took to produce."""

    value: object
    seconds: float


def timed(function: Callable[[], T]) -> Timed:
    """Run ``function`` once, returning its value and elapsed seconds."""
    start = time.perf_counter()
    value = function()
    return Timed(value=value, seconds=time.perf_counter() - start)


def best_of(function: Callable[[], T], repeats: int = 3) -> Timed:
    """The fastest of ``repeats`` runs (reduces scheduler noise)."""
    best: Timed | None = None
    for _ in range(repeats):
        current = timed(function)
        if best is None or current.seconds < best.seconds:
            best = current
    assert best is not None
    return best
