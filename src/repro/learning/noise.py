"""Noise handling (Section 9).

Real XML is dirty: the paper's XHTML survey found disallowed children
(``table`` under ``<p>``, …) in a handful of the 30 000+ paragraph
occurrences examined.  Two counter-measures are described:

* **support thresholding** — disregard element names whose support
  (number of words mentioning them) falls below a threshold;
* **support-aware iDTD** — annotate every SOA edge with its support;
  run the unmodified rewrite rules while they apply, and when rewrite
  gets stuck, try *deleting* low-support edges (cheap, evidence-poor)
  before resorting to repair rules (which can only generalise).

Deleting edges shrinks the language, so unlike Theorem 2 the result is
not guaranteed to cover the whole (noisy) sample — that is the point:
the noise should be excluded.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..automata.soa import SOA
from ..core.idtd import IdtdResult, idtd_from_soa
from ..core.rewrite import rewrite
from ..errors import CorpusError
from ..regex.ast import Regex

Word = Sequence[str]


@dataclass
class WeightedSOA:
    """A SOA whose parts carry support counts (words contributing them)."""

    soa: SOA
    edge_support: Counter[tuple[str, str]] = field(default_factory=Counter)
    initial_support: Counter[str] = field(default_factory=Counter)
    final_support: Counter[str] = field(default_factory=Counter)
    symbol_support: Counter[str] = field(default_factory=Counter)
    word_count: int = 0

    @classmethod
    def from_words(cls, words: Iterable[Word]) -> "WeightedSOA":
        weighted = cls(soa=SOA())
        for word in words:
            weighted.add(word)
        return weighted

    def add(self, word: Word) -> None:
        self.word_count += 1
        soa = self.soa
        if not word:
            soa.accepts_empty = True
            return
        soa.symbols.update(word)
        soa.initial.add(word[0])
        soa.final.add(word[-1])
        self.initial_support[word[0]] += 1
        self.final_support[word[-1]] += 1
        for symbol in set(word):
            self.symbol_support[symbol] += 1
        for gram in zip(word, word[1:], strict=False):
            soa.edges.add(gram)
            self.edge_support[gram] += 1

    def prune_symbols(self, min_support: int) -> "WeightedSOA":
        """Drop element names supported by fewer than ``min_support`` words.

        This is the paper's simple noise counter-measure; it removes the
        state and all incident edges.
        """
        keep = {
            symbol
            for symbol in self.soa.symbols
            if self.symbol_support[symbol] >= min_support
        }
        soa = SOA(
            symbols=set(keep),
            initial=self.soa.initial & keep,
            final=self.soa.final & keep,
            edges={
                (a, b) for (a, b) in self.soa.edges if a in keep and b in keep
            },
            accepts_empty=self.soa.accepts_empty,
        )
        pruned = WeightedSOA(
            soa=soa,
            edge_support=Counter(
                {
                    edge: count
                    for edge, count in self.edge_support.items()
                    if edge[0] in keep and edge[1] in keep
                }
            ),
            initial_support=Counter(
                {s: c for s, c in self.initial_support.items() if s in keep}
            ),
            final_support=Counter(
                {s: c for s, c in self.final_support.items() if s in keep}
            ),
            symbol_support=Counter(
                {s: c for s, c in self.symbol_support.items() if s in keep}
            ),
            word_count=self.word_count,
        )
        return pruned


@dataclass
class DenoisedResult:
    """Outcome of support-aware inference."""

    regex: Regex
    dropped_symbols: list[str]
    dropped_edges: list[tuple[str, str]]
    repaired: bool


def idtd_denoised(
    words: Sequence[Word],
    symbol_threshold: int = 0,
    edge_threshold: int = 0,
    k: int = 2,
    eager: bool = True,
) -> DenoisedResult:
    """Support-aware iDTD.

    1. Symbols below ``symbol_threshold`` support are disregarded.
    2. Low-support structure (2-gram edges, start/final memberships at
       or below ``edge_threshold``) is deleted: all of it up front when
       ``eager`` (the default — noise is noise), or one piece at a time
       and only when ``rewrite`` is stuck when ``eager=False`` (the
       paper's literal formulation, which keeps low-support evidence
       that rewrite can still absorb).
    3. When no deletable structure remains, the ordinary repair rules
       of iDTD finish the job.

    With both thresholds 0 this is exactly iDTD.
    """
    weighted = WeightedSOA.from_words(words)
    dropped_symbols: list[str] = []
    if symbol_threshold > 0:
        before = set(weighted.soa.symbols)
        weighted = weighted.prune_symbols(symbol_threshold)
        dropped_symbols = sorted(before - weighted.soa.symbols)
    if not weighted.soa.symbols:
        raise CorpusError(
            "all element names fell below the support threshold; "
            "nothing left to infer from"
        )
    soa = weighted.soa.trimmed()
    dropped_edges: list[tuple[str, str]] = []

    def deletable_items() -> list[tuple[int, tuple[str, str]]]:
        """Low-support structure: 2-gram edges plus the virtual
        source/final edges (a noisy word also pollutes I and F);
        ``_SRC_``/``_SNK_`` markers record those in ``dropped_edges``."""
        items: list[tuple[int, tuple[str, str]]] = []
        for edge in soa.edges:
            support = weighted.edge_support[edge]
            if support <= edge_threshold:
                items.append((support, edge))
        if len(soa.initial) > 1:
            for symbol in soa.initial:
                support = weighted.initial_support[symbol]
                if support <= edge_threshold:
                    items.append((support, ("_SRC_", symbol)))
        if len(soa.final) > 1:
            for symbol in soa.final:
                support = weighted.final_support[symbol]
                if support <= edge_threshold:
                    items.append((support, (symbol, "_SNK_")))
        return items

    def delete(victim: tuple[str, str]) -> None:
        nonlocal soa
        if victim[0] == "_SRC_":
            soa.initial.discard(victim[1])
        elif victim[1] == "_SNK_":
            soa.final.discard(victim[0])
        else:
            soa.edges.discard(victim)
        dropped_edges.append(victim)
        soa = soa.trimmed()
        if not soa.symbols:
            raise CorpusError(
                "edge pruning disconnected the automaton; "
                "lower the edge threshold"
            )

    if eager:
        while True:
            items = deletable_items()
            if not items:
                break
            delete(min(items)[1])
    while True:
        result = rewrite(soa.copy())
        if result.succeeded:
            return DenoisedResult(
                regex=result.regex,
                dropped_symbols=dropped_symbols,
                dropped_edges=dropped_edges,
                repaired=False,
            )
        items = deletable_items()
        if not items:
            break
        delete(min(items)[1])
    final: IdtdResult = idtd_from_soa(soa, k=k)
    return DenoisedResult(
        regex=final.regex,
        dropped_symbols=dropped_symbols,
        dropped_edges=dropped_edges,
        repaired=final.repaired,
    )
