"""The repro exception hierarchy and its mapping onto CLI exit codes.

Every error the system raises deliberately descends from
:class:`ReproError`, split by *whose fault it is*:

* :class:`UsageError` — the caller asked for something impossible
  (bad flags, illegal option combinations, malformed requests);
* :class:`CorpusError` — the caller's *data* is the problem
  (malformed XML, malformed DTDs, samples from which nothing can be
  learned);
* :class:`InternalError` — a bug in the inference engine itself,
  never the user's fault.

For backwards compatibility the user-facing classes also subclass
``ValueError`` (historically everything user-triggered was a plain
``ValueError``) and :class:`InternalError` subclasses ``RuntimeError``,
so existing ``except``/``pytest.raises`` clauses keep working.

The CLI exit-code contract — ``0`` success, ``1`` usage or input
error, ``2`` internal error — is encoded *once*, in
:func:`exit_code_for`; :mod:`repro.cli` consumes it rather than
re-deciding per call site.  The HTTP daemon (:mod:`repro.serve`) maps
the same hierarchy onto status codes the same way — one split, two
transports.

Deprecation lives here too: :func:`legacy_entry_point` is the single
gate every legacy shim (``infer_dtd``, ``DTDInferencer.infer*``,
``infer_parallel``) goes through.  It warns **once per process** per
entry point, and under ``REPRO_STRICT_API=1`` it raises
:class:`UsageError` instead — the removal rehearsal mode.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Any

EXIT_OK = 0
EXIT_USAGE = 1
EXIT_INTERNAL = 2


class ReproError(Exception):
    """Base class of every error repro raises deliberately."""


class UsageError(ReproError, ValueError):
    """The request itself is invalid: bad flags, illegal combinations."""


class CorpusError(ReproError, ValueError):
    """The input data is invalid or insufficient: malformed XML/DTDs,
    samples with no learnable content.

    ``degradation`` is ``None`` except when the resilient runtime
    aborted a run it had already partially degraded: then the raise
    site attaches the partial
    :class:`~repro.runtime.resilience.DegradationReport`, so callers
    (the CLI's stderr summary, :mod:`repro.serve`'s 503 bodies) can
    show what *was* processed before the abort.
    """

    degradation: Any | None = None


class QuarantineExceeded(CorpusError):
    """Too much of the corpus was quarantined for graceful degradation.

    Raised by the resilient runtime (:mod:`repro.runtime.resilience`)
    when ``on_error="skip"`` runs past ``max_quarantine=`` skipped
    documents: at that point the sample is too broken for a partial
    DTD to mean anything, which makes it an input problem (exit 1).
    """


class ShardTimeout(CorpusError):
    """A corpus shard kept exceeding its processing deadline.

    In strict mode a shard that breaches ``shard_deadline`` on every
    retry surfaces as this error rather than completing arbitrarily
    late.  A pathological document that cannot be processed in time is
    an input problem (exit 1), not an engine bug; ``on_error="skip"``
    degrades by resharding in-driver instead of raising.
    """


class InternalError(ReproError, RuntimeError):
    """A bug in the engine — supposedly-unreachable states."""


def exit_code_for(error: BaseException) -> int:
    """The CLI exit code for an exception, per the 0/1/2 contract.

    Anything user-triggered (usage, corpus, and the legacy ``OSError``/
    ``ValueError`` family) exits 1; engine bugs exit 2.
    """
    if isinstance(error, (UsageError, CorpusError)):
        return EXIT_USAGE
    if isinstance(error, InternalError):
        return EXIT_INTERNAL
    if isinstance(error, (OSError, UnicodeDecodeError, ValueError)):
        return EXIT_USAGE
    return EXIT_INTERNAL


#: Entry points that already warned this process (see
#: :func:`legacy_entry_point`).  One warning per name per process: a
#: service calling a shim in a hot loop logs one line, not millions.
_WARNED_LEGACY: set[str] = set()
_WARNED_LEGACY_LOCK = threading.Lock()


def strict_api_enabled() -> bool:
    """Whether ``REPRO_STRICT_API`` asks legacy shims to raise."""
    return os.environ.get("REPRO_STRICT_API", "").strip() not in ("", "0")


def legacy_entry_point(old: str, new: str, *, stacklevel: int = 3) -> None:
    """The deprecation gate every legacy shim calls before running.

    Under ``REPRO_STRICT_API=1`` the shim refuses to run at all
    (:class:`UsageError`, exit 1) — the rehearsal for the scheduled
    removal (see docs/API.md).  Otherwise a
    :class:`DeprecationWarning` is emitted the *first* time each entry
    point is hit in a process and suppressed afterwards.
    """
    if strict_api_enabled():
        raise UsageError(
            f"{old} is disabled under REPRO_STRICT_API=1 "
            f"(scheduled for removal); use {new}"
        )
    with _WARNED_LEGACY_LOCK:
        if old in _WARNED_LEGACY:
            return
        _WARNED_LEGACY.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_legacy_warnings() -> None:
    """Forget which shims warned (tests re-assert warn-once behaviour)."""
    with _WARNED_LEGACY_LOCK:
        _WARNED_LEGACY.clear()


__all__ = [
    "EXIT_INTERNAL",
    "EXIT_OK",
    "EXIT_USAGE",
    "CorpusError",
    "InternalError",
    "QuarantineExceeded",
    "ReproError",
    "ShardTimeout",
    "UsageError",
    "exit_code_for",
    "legacy_entry_point",
    "reset_legacy_warnings",
    "strict_api_enabled",
]
