"""Map-reduce DTD inference over corpus shards (Section 9, scaled out).

Both learners keep internal state that is tiny compared to the corpus
(the SOA triple for iDTD; the arrow relation plus occurrence profiles
for CRX) and that state merges associatively.  That makes inference
embarrassingly data-parallel:

* **map** — each worker parses its shard of document *paths* and folds
  them into a :class:`~repro.xmlio.extract.StreamingEvidence` (constant
  memory in shard size; only file paths cross the process boundary on
  the way in, only learner states on the way out);
* **reduce** — shard states merge in shard order, which reproduces the
  batch evidence exactly (including the bounded text/attribute
  reservoirs, because shards are contiguous chunks of the corpus);
* **finalize** — one :class:`~repro.core.inference.DTDInferencer` pass
  over the merged states.

The result is byte-identical to batch inference on the same corpus —
property-tested in ``tests/runtime/test_parallel.py``.

Instrumentation rides the same rails as the evidence: each worker runs
a private :class:`~repro.obs.recorder.StatsRecorder`, ships its plain
``snapshot()`` dict back with the evidence, and the driver folds the
snapshots into its own recorder via ``merge_snapshot`` (tagging each
with its shard index) — the observability monoid merged alongside the
evidence monoid.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Iterable, Sequence

from ..contracts import check_merge_commutative, contracts_enabled
from ..core.inference import DTDInferencer, Method
from ..obs.recorder import NULL_RECORDER, Recorder, Snapshot, StatsRecorder
from ..xmlio.dtd import Dtd
from ..xmlio.extract import StreamingEvidence
from ..xmlio.parser import parse_file

Backend = str  # "process" | "thread" | "serial"


def shard_paths(paths: Sequence[str], shards: int) -> list[list[str]]:
    """Split ``paths`` into at most ``shards`` contiguous chunks.

    Chunks are contiguous (not round-robin) and returned in corpus
    order so that merging shard evidence left-to-right visits values in
    the same order as a sequential pass — the property that keeps the
    capped text/attribute reservoirs identical to the batch path.
    """
    paths = list(paths)
    if not paths:
        return []
    shards = max(1, min(shards, len(paths)))
    base, extra = divmod(len(paths), shards)
    chunks: list[list[str]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(paths[start : start + size])
        start += size
    return chunks


def extract_from_paths(
    paths: Iterable[str], recorder: Recorder = NULL_RECORDER
) -> StreamingEvidence:
    """The map step: parse each file and fold it into streaming state.

    Documents are parsed one at a time and released immediately; the
    worker's footprint is one document plus the learner states.
    """
    evidence = StreamingEvidence()
    for path in paths:
        document = parse_file(path, recorder)
        with recorder.span("extract", file=str(path)):
            evidence.add_document(document, recorder)
    return evidence


def _extract_shard_recorded(
    task: tuple[int, Sequence[str]],
) -> tuple[StreamingEvidence, Snapshot]:
    """Worker body for instrumented runs: evidence plus a stats snapshot.

    Module-level (not a closure) so it pickles into process pools.  The
    recorder is created inside the worker and only its plain-dict
    snapshot travels back across the process boundary.
    """
    index, paths = task
    recorder = StatsRecorder()
    with recorder.span("shard", index=index, files=len(paths)):
        evidence = extract_from_paths(paths, recorder)
    return evidence, recorder.snapshot()


def merge_evidence(parts: Iterable[StreamingEvidence]) -> StreamingEvidence:
    """The reduce step: fold shard evidence together, left to right."""
    merged = StreamingEvidence()
    for part in parts:
        if contracts_enabled():
            check_merge_commutative(merged, part)
        merged.merge(part)
    return merged


def parallel_evidence(
    paths: Sequence[str],
    jobs: int | None = None,
    backend: Backend = "process",
    executor: Executor | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> StreamingEvidence:
    """Extract streaming evidence from ``paths`` using ``jobs`` workers.

    ``jobs=None`` uses the CPU count; ``jobs<=1`` (or a single file, or
    ``backend="serial"``) runs in-process without an executor.  A
    caller-supplied ``executor`` overrides backend selection — useful
    for reusing a warm pool across corpora.

    With a live ``recorder``, each worker records into its own
    :class:`StatsRecorder` and the per-shard snapshots merge into
    ``recorder`` in shard order, tagged with their shard index.
    """
    paths = list(paths)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if executor is None and (
        jobs <= 1 or len(paths) <= 1 or backend == "serial"
    ):
        return extract_from_paths(paths, recorder)
    shards = shard_paths(paths, jobs)

    def _reduce(results: Iterable[object]) -> StreamingEvidence:
        if not recorder.enabled:
            return merge_evidence(results)
        merged = StreamingEvidence()
        for index, (evidence, snapshot) in enumerate(results):
            if contracts_enabled():
                check_merge_commutative(merged, evidence)
            merged.merge(evidence)
            recorder.merge_snapshot(snapshot, shard=index)
            recorder.count("shards")
        return merged

    if recorder.enabled:
        worker, work = _extract_shard_recorded, list(enumerate(shards))
    else:
        worker, work = extract_from_paths, shards
    if executor is not None:
        return _reduce(executor.map(worker, work))
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=len(shards)) as pool:
        # Executor.map preserves input order, so the reduce sees shards
        # in corpus order regardless of completion order.
        return _reduce(pool.map(worker, work))


def infer_parallel(
    paths: Sequence[str],
    jobs: int | None = None,
    method: Method = "auto",
    backend: Backend = "process",
    executor: Executor | None = None,
    inferencer: DTDInferencer | None = None,
) -> Dtd:
    """Deprecated: use :func:`repro.api.infer` with
    ``InferenceConfig(streaming=True, jobs=N)``.

    Produces the same DTD as batch inference over the parsed corpus,
    with peak memory bounded by learner-state size and wall-clock
    divided across ``jobs`` workers.
    """
    warnings.warn(
        "infer_parallel is deprecated; use repro.api.infer",
        DeprecationWarning,
        stacklevel=2,
    )
    if inferencer is None:
        inferencer = DTDInferencer(method=method)
    evidence = parallel_evidence(
        paths,
        jobs=jobs,
        backend=backend,
        executor=executor,
        recorder=inferencer.recorder,
    )
    return inferencer._finalize_streaming(evidence)
