"""The generalisation protocol of Section 8.2 (Figure 4).

For a target expression and a learner, measure how many example
strings are needed to recover the learner's own target expression:

1. generate a representative sample for the target;
2. derive the learner's reference output from the *full* sample
   (``r_crx`` / ``r_iDTD`` in the paper's notation);
3. for each candidate size, draw ``trials`` reservoir subsamples
   (constrained to mention every alphabet symbol), run the learner,
   and count how often the reference output is recovered;
4. the *critical size* is the smallest size at which every tested
   subsample succeeds.

``rewrite`` participates as a learner that fails whenever the
subsample's SOA has no equivalent SORE — the gap between its curve and
iDTD's is the paper's evidence that the repair rules work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..core.crx import crx
from ..core.idtd import idtd
from ..core.rewrite import rewrite
from ..learning.sampling import covering_subsample
from ..learning.tinf import tinf
from ..regex.ast import Regex
from ..regex.normalize import syntactically_equal

Word = tuple[str, ...]
Learner = Callable[[Sequence[Word]], Regex]


def rewrite_learner(words: Sequence[Word]) -> Regex:
    """``rewrite`` without repairs; raises when no equivalent SORE exists."""
    result = rewrite(tinf(words))
    if result.regex is None:
        raise _RewriteFailed()
    return result.regex


class _RewriteFailed(Exception):
    pass


LEARNERS: dict[str, Learner] = {
    "crx": crx,
    "idtd": idtd,
    "rewrite": rewrite_learner,
}


@dataclass(frozen=True)
class CurvePoint:
    """One (sample size, success fraction) measurement."""

    size: int
    successes: int
    trials: int

    @property
    def fraction(self) -> float:
        return self.successes / self.trials if self.trials else 0.0


@dataclass
class SuccessCurve:
    """A full curve for one learner on one target."""

    learner: str
    reference: Regex
    points: list[CurvePoint]

    def critical_size(self) -> int | None:
        """Smallest tested size from which *all* trials succeeded onward."""
        critical: int | None = None
        for point in sorted(self.points, key=lambda p: p.size):
            if point.successes == point.trials:
                if critical is None:
                    critical = point.size
            else:
                critical = None
        return critical


def learner_reference(learner: str, full_sample: Sequence[Word]) -> Regex:
    """The learner's own target: its output on the full sample.

    When ``rewrite`` fails even on the full sample (the target has no
    equivalent SORE — e.g. Figure 4's example4 panel), the iDTD
    reference is used instead; the rewrite curve is then flat at zero,
    which is exactly the paper's middle plot.
    """
    try:
        return LEARNERS[learner](full_sample)
    except _RewriteFailed:
        return LEARNERS["idtd"](full_sample)


def success_curve(
    learner: str,
    full_sample: Sequence[Word],
    sizes: Sequence[int],
    trials: int,
    rng: random.Random,
    reference: Regex | None = None,
) -> SuccessCurve:
    """Measure the success fraction at each subsample size.

    Success means the learner's output on the subsample equals (up to
    commutativity of ``+``) its output on the full sample, as in the
    paper's protocol.  Subsamples are constrained to mention every
    symbol of the full sample; the constraint is the paper's own
    ("for fair comparison").
    """
    if reference is None:
        reference = learner_reference(learner, full_sample)
    run = LEARNERS[learner]
    required = frozenset(
        symbol for word in full_sample for symbol in word
    )
    points: list[CurvePoint] = []
    for size in sizes:
        successes = 0
        for _ in range(trials):
            subsample = covering_subsample(
                full_sample, size, rng, required_symbols=required
            )
            try:
                derived = run(subsample)
            # lint: allow R003 — a learner crash *is* the measured outcome
            except Exception:
                continue  # failure to produce = failure to recover
            if syntactically_equal(derived, reference):
                successes += 1
        points.append(CurvePoint(size=size, successes=successes, trials=trials))
    return SuccessCurve(learner=learner, reference=reference, points=points)


def figure4_panel(
    full_sample: Sequence[Word],
    sizes: Sequence[int],
    trials: int,
    rng: random.Random,
    learners: Sequence[str] = ("crx", "idtd", "rewrite"),
) -> dict[str, SuccessCurve]:
    """All three curves of one Figure 4 panel."""
    return {
        learner: success_curve(learner, full_sample, sizes, trials, rng)
        for learner in learners
    }
