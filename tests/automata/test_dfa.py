"""Explicit DFAs: subset construction, minimisation, isomorphism."""

import itertools

from hypothesis import given, settings

from repro.automata.dfa import from_regex, isomorphic, minimal_dfa_size, minimize
from repro.regex.language import matches
from repro.regex.parser import parse_regex

from ..conftest import sores


class TestConstruction:
    def test_accepts_agrees_with_matcher(self):
        expression = parse_regex("a (b + c)* d?")
        dfa = from_regex(expression)
        for length in range(5):
            for word in itertools.product("abcd", repeat=length):
                assert dfa.accepts(word) == matches(expression, word), word

    def test_nondeterministic_expression_determinised(self):
        expression = parse_regex("(a + b)* a")  # classic non-1-unambiguous
        dfa = from_regex(expression)
        for length in range(6):
            for word in itertools.product("ab", repeat=length):
                assert dfa.accepts(word) == matches(expression, word), word

    @settings(max_examples=40, deadline=None)
    @given(sores(max_symbols=5))
    def test_dfa_equals_matcher_on_random_sores(self, expression):
        dfa = from_regex(expression)
        alphabet = sorted(expression.alphabet())
        for word in itertools.islice(
            itertools.chain.from_iterable(
                itertools.product(alphabet, repeat=k) for k in range(4)
            ),
            80,
        ):
            assert dfa.accepts(word) == matches(expression, word)


class TestMinimisation:
    def test_redundant_states_merged(self):
        # (a b) + (a c) determinises to 4 live states; minimisation
        # cannot shrink below... b,c targets merge: accepts {ab, ac}:
        # states: start, after-a, after-ab/ac (merged) => 3
        dfa = minimize(from_regex(parse_regex("(a b) + (a c)")))
        assert dfa.state_count == 3

    def test_language_preserved(self):
        expression = parse_regex("(a + b)+ c?")
        minimal = minimize(from_regex(expression))
        for length in range(5):
            for word in itertools.product("abc", repeat=length):
                assert minimal.accepts(word) == matches(expression, word)

    def test_minimal_size_of_equivalent_expressions_equal(self):
        assert minimal_dfa_size(parse_regex("(a?)+")) == minimal_dfa_size(
            parse_regex("a*")
        )

    def test_star_has_one_state(self):
        assert minimal_dfa_size(parse_regex("a*")) == 1

    @settings(max_examples=30, deadline=None)
    @given(sores(max_symbols=5))
    def test_minimisation_never_grows(self, expression):
        dfa = from_regex(expression)
        assert minimize(dfa).state_count <= dfa.state_count


class TestIsomorphism:
    def test_equivalent_expressions_isomorphic(self):
        first = minimize(from_regex(parse_regex("(a + b)*")))
        second = minimize(from_regex(parse_regex("(a* b*)*")))
        assert isomorphic(first, second)

    def test_inequivalent_not_isomorphic(self):
        first = minimize(from_regex(parse_regex("a+")))
        second = minimize(from_regex(parse_regex("a*")))
        assert not isomorphic(first, second)

    def test_different_alphabets_not_isomorphic(self):
        first = minimize(from_regex(parse_regex("a")))
        second = minimize(from_regex(parse_regex("b")))
        assert not isomorphic(first, second)

    @settings(max_examples=30, deadline=None)
    @given(sores(max_symbols=5))
    def test_isomorphism_agrees_with_language_equivalence(self, expression):
        """Third independent equivalence path: Prop 1 meets Hopcroft."""
        from repro.automata.soa import SOA
        from repro.core.rewrite import rewrite

        result = rewrite(SOA.from_regex(expression))
        assert result.succeeded
        assert isomorphic(
            minimize(from_regex(expression)),
            minimize(from_regex(result.regex)),
        )
