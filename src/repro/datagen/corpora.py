"""The paper's concrete expressions and corpora (Tables 1–2, Figure 4).

The original evaluation used the Protein Sequence Database and Mondial
XML corpora plus ToXgene-generated data.  Neither corpus is
redistributable, but Table 1 fully documents both the *original DTD*
content model of every element and the (sometimes stricter) expression
the data actually followed — e.g. ``refinfo``'s ``volume``/``month``
mutual exclusion, or ``genetics`` never containing ``a11``.  We
therefore regenerate each element's sample from its *corpus behaviour*
expression, which preserves exactly the properties the experiment
measures (which expression each learner infers from that data).

Element definitions keep the paper's ``a1..an`` naming; where the paper
spells out real element names (``refinfo``) those are available too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..regex.ast import Regex
from ..regex.parser import parse_regex
from .strings import Word, padded_sample, representative_sample


@dataclass(frozen=True)
class Table1Row:
    """One element of Table 1 (Protein Sequence Database / Mondial)."""

    element: str
    original_dtd: str  # the content model in the published DTD
    corpus_behaviour: str  # the stricter expression the data follows
    expected_crx: str  # paper-reported CRX output
    expected_idtd: str  # paper-reported iDTD output
    sample_size: int  # paper's sample size for crx/iDTD
    xtract_sample_size: int  # paper's (often reduced) sample for xtract
    xtract_outcome: str  # paper-reported xtract output or token count

    def original(self) -> Regex:
        return parse_regex(self.original_dtd)

    def generator(self) -> Regex:
        return parse_regex(self.corpus_behaviour)

    def crx_target(self) -> Regex:
        return parse_regex(self.expected_crx)

    def idtd_target(self) -> Regex:
        return parse_regex(self.expected_idtd)

    def sample(self, rng: random.Random | None = None) -> list[Word]:
        generator = self.generator()
        if rng is None:
            return representative_sample(generator)
        return padded_sample(generator, self.sample_size, rng)


#: Table 1.  ``corpus_behaviour`` encodes the deviations the paper
#: reports between the published DTD and the actual data:
#: * ProteinEntry — ``a4`` always present (``a4*`` behaves as ``a4+``);
#: * refinfo — ``volume``/``month`` mutually exclusive, and
#:   ``description`` (a8) never followed by ``xrefs`` (a9), so the
#:   learners order ``a9?`` before ``a8?``;
#: * authors — ``a3`` always present when ``a2`` is (iDTD infers
#:   ``a1+ + (a2 a3)``);
#: * accinfo — ``a3`` always present; genetics — ``a11`` never occurs.
TABLE1: tuple[Table1Row, ...] = (
    Table1Row(
        element="ProteinEntry",
        original_dtd="a1 a2 a3 a4* a5* a6* a7* a8* a9? a10? a11* a12 a13",
        corpus_behaviour="a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
        expected_crx="a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
        expected_idtd="a1 a2 a3 a4+ a5* a6* a7* a8* a9? a10? a11* a12 a13",
        sample_size=2458,
        xtract_sample_size=843,
        xtract_outcome="an expression of 185 tokens",
    ),
    Table1Row(
        element="organism",
        original_dtd="a1 a2? a3 a4? a5*",
        corpus_behaviour="a1 a2? a3 a4? a5*",
        expected_crx="a1 a2? a3 a4? a5*",
        expected_idtd="a1 a2? a3 a4? a5*",
        sample_size=9,
        xtract_sample_size=9,
        xtract_outcome="a1((a2 a3 a4? + a3 a4) a5? + a3 a5*)",
    ),
    Table1Row(
        element="reference",
        original_dtd="a1 a2* a3* a4*",
        corpus_behaviour="a1 a2* a3* a4*",
        expected_crx="a1 a2* a3* a4*",
        expected_idtd="a1 a2* a3* a4*",
        sample_size=45,
        xtract_sample_size=45,
        xtract_outcome="a1(a2*(a4* + a3*) + a2 a3* a4 a4 + a3* a4*)",
    ),
    Table1Row(
        element="refinfo",
        original_dtd="a1 a2 a3? a4? a5 a6? (a7 + a8)? a9?",
        corpus_behaviour="a1 a2 (a3 + a4)? a5 a6? a7? a9? a8?",
        expected_crx="a1 a2 (a3 + a4)? a5 a6? a7? a9? a8?",
        expected_idtd="a1 a2 (a3 + a4)? a5 a6? a7? a9? a8?",
        sample_size=10,
        xtract_sample_size=10,
        xtract_outcome="a1 a2((a3 a5 a6 a7? + a4 a5) a9? + a5 (a7 + a8)? + a4 a5 a8)",
    ),
    Table1Row(
        element="authors",
        original_dtd="a1+ + (a2 a3?)",
        corpus_behaviour="a1+ + (a2 a3)",
        expected_crx="a1* a2? a3?",
        expected_idtd="a1+ + (a2 a3)",
        sample_size=54,
        xtract_sample_size=54,
        xtract_outcome="a1* + a2 a3",
    ),
    Table1Row(
        element="accinfo",
        original_dtd="a1 a2* a3* a4? a5? a6? a7*",
        corpus_behaviour="a1 a2* a3+ a4? a5? a6? a7*",
        expected_crx="a1 a2* a3+ a4? a5? a6? a7*",
        expected_idtd="a1 a2* a3+ a4? a5? a6? a7*",
        sample_size=124,
        xtract_sample_size=124,
        xtract_outcome="an expression of 97 tokens",
    ),
    Table1Row(
        element="genetics",
        original_dtd="a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a11* a12*",
        corpus_behaviour="a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
        expected_crx="a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
        expected_idtd="a1* a2? a3? a4? a5? a6? a7? a8? a9? a10? a12*",
        sample_size=219,
        xtract_sample_size=219,
        xtract_outcome="an expression of 329 tokens",
    ),
    Table1Row(
        element="function",
        original_dtd="a1? a2* a3*",
        corpus_behaviour="a1? a2* a3*",
        expected_crx="a1? a2* a3*",
        expected_idtd="a1? a2* a3*",
        sample_size=26,
        xtract_sample_size=26,
        xtract_outcome=(
            "(a1 (a2? a2? a3* + a2* (a3 a3)* + a2 a2 a2 a3) + a2 (a2 a3* + a3*))"
        ),
    ),
    Table1Row(
        element="city",
        original_dtd="a1 a2* a3*",
        corpus_behaviour="a1 a2* a3*",
        expected_crx="a1 a2* a3*",
        expected_idtd="a1 a2* a3*",
        sample_size=9,
        xtract_sample_size=9,
        xtract_outcome="a1 (a2* a3 a3? + a2 (a3* + a2))?",
    ),
)

#: Real element names of the ``refinfo`` content model, as printed in
#: the paper's schema-cleaning example (Section 1.1).
REFINFO_ELEMENT_NAMES: dict[str, str] = {
    "a1": "authors",
    "a2": "citation",
    "a3": "volume",
    "a4": "month",
    "a5": "year",
    "a6": "pages",
    "a7": "title",
    "a8": "description",
    "a9": "xrefs",
}


def _range_disjunction(first: int, last: int) -> str:
    return "(" + " + ".join(f"a{i}" for i in range(first, last + 1)) + ")"


@dataclass(frozen=True)
class Table2Row:
    """One expression of Table 2 (sophisticated real-world REs)."""

    element: str
    original_dtd: str
    expected_crx: str
    expected_idtd: str
    sample_size: int
    xtract_sample_size: int
    xtract_outcome: str

    def original(self) -> Regex:
        return parse_regex(self.original_dtd)

    def generator(self) -> Regex:
        return self.original()

    def crx_target(self) -> Regex:
        return parse_regex(self.expected_crx)

    def idtd_target(self) -> Regex:
        return parse_regex(self.expected_idtd)

    def sample(self, rng: random.Random | None = None, size: int | None = None) -> list[Word]:
        generator = self.generator()
        if rng is None:
            return representative_sample(generator)
        return padded_sample(generator, size or self.sample_size, rng)


TABLE2: tuple[Table2Row, ...] = (
    Table2Row(
        element="example1",
        original_dtd="a1+ + (a2? a3+)",
        expected_crx="a1* a2? a3*",
        expected_idtd="a1+ + (a2? a3+)",
        sample_size=48,
        xtract_sample_size=48,
        xtract_outcome="a1* + (a2? a3*)",
    ),
    Table2Row(
        element="example2",
        original_dtd=f"(a1 a2? a3?)? a4? {_range_disjunction(5, 18)}*",
        expected_crx=f"a1? a2? a3? a4? {_range_disjunction(5, 18)}*",
        expected_idtd=f"(a1 a2? a3?)? a4? {_range_disjunction(5, 18)}*",
        sample_size=2210,
        xtract_sample_size=300,
        xtract_outcome="an expression of 252 tokens",
    ),
    Table2Row(
        element="example3",
        original_dtd=f"a1? (a2 a3?)? {_range_disjunction(4, 44)}* a45+",
        expected_crx=f"a1? a2? a3? {_range_disjunction(4, 44)}* a45+",
        expected_idtd=f"a1? (a2 a3?)? {_range_disjunction(4, 44)}* a45+",
        sample_size=5741,
        xtract_sample_size=400,
        xtract_outcome="an expression of 142 tokens",
    ),
    Table2Row(
        element="example4",
        original_dtd=f"a1? a2 a3? a4? (a5+ + ({_range_disjunction(6, 61)}+ a5*))",
        expected_crx=f"a1? a2 a3? a4? {_range_disjunction(6, 61)}* a5*",
        expected_idtd=f"a1? a2 a3? a4? {_range_disjunction(6, 61)}* a5*",
        sample_size=10000,
        xtract_sample_size=500,
        xtract_outcome="an expression of 185 tokens",
    ),
    Table2Row(
        element="example5",
        original_dtd="a1 (a2 + a3)* (a4 (a2 + a3 + a5)*)*",
        expected_crx="a1 (a2 + a3 + a4 + a5)*",
        expected_idtd="a1 ((a2 + a3 + a4)+ a5*)*",
        sample_size=1281,
        xtract_sample_size=500,
        xtract_outcome="an expression of 85 tokens",
    ),
)

#: Figure 4's third panel target, expression (‡):
#: ``(a1 (a2 + ... + a12)+ (a13 + a14))+``.
FIGURE4_DAGGER: str = f"(a1 {_range_disjunction(2, 12)}+ (a13 + a14))+"

#: The three Figure 4 panels: name → target expression text.
FIGURE4_TARGETS: dict[str, str] = {
    "example2": TABLE2[1].original_dtd,
    "example4": TABLE2[3].original_dtd,
    "dagger": FIGURE4_DAGGER,
}


def table1_row(element: str) -> Table1Row:
    for row in TABLE1:
        if row.element == element:
            return row
    raise KeyError(element)  # lint: allow R002 — mapping-lookup protocol


def table2_row(element: str) -> Table2Row:
    for row in TABLE2:
        if row.element == element:
            return row
    raise KeyError(element)  # lint: allow R002 — mapping-lookup protocol
