"""Experiment E6 — Section 8.1: the Trang comparison.

Expected shape: Trang's output equals CRX's on every Table 1 / Table 2
corpus except example1, where it depends on the presentation order —
contiguous grouping yields the exact ``a1+ + (a2? a3+)``, interleaving
yields ``a1* a2? a3*`` (the inconsistency the paper uses to argue for a
formally specified target class).
"""

import random

from repro.baselines.trang import trang
from repro.core.crx import crx
from repro.datagen.corpora import TABLE1, TABLE2, table2_row
from repro.evaluation.tables import Table
from repro.regex.normalize import syntactically_equal
from repro.regex.printer import to_paper_syntax


def test_trang_crx_agreement(rng, benchmark):
    table = Table(
        headers=("element", "agrees with crx"),
        title="E6: Trang vs CRX on Tables 1-2 "
        "(paper: identical in all but one case)",
    )
    agreements = 0
    rows = list(TABLE1) + list(TABLE2)
    for row in rows:
        sample = row.sample()
        same = syntactically_equal(trang(sample), crx(sample))
        agreements += same
        table.add(row.element, "yes" if same else "NO")
    table.show()
    benchmark(lambda: trang(TABLE1[0].sample()))
    assert agreements == len(rows)


def test_example1_order_sensitivity(benchmark):
    row = table2_row("example1")
    base = row.sample()
    contiguous = sorted(base)
    interleaved = list(base)
    random.Random(7).shuffle(interleaved)

    contiguous_result = trang(contiguous)
    interleaved_result = benchmark(lambda: trang(interleaved))

    table = Table(
        headers=("presentation", "Trang output"),
        title="E6b: example1 — Trang's input-order dependence",
    )
    table.add("grouped by pattern", to_paper_syntax(contiguous_result))
    table.add("interleaved", to_paper_syntax(interleaved_result))
    table.add("paper outcome A", "a1+ + (a2? a3+)")
    table.add("paper outcome B", "a1* a2? a3*")
    table.show()

    from repro.regex.parser import parse_regex

    assert syntactically_equal(contiguous_result, parse_regex("a1+ + (a2? a3+)"))
    assert syntactically_equal(interleaved_result, parse_regex("a1* a2? a3*"))
    assert not syntactically_equal(contiguous_result, interleaved_result)
