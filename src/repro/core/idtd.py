"""iDTD — inference of SOREs with repair (Section 6, Algorithm 2).

``idtd(soa)`` runs ``rewrite`` to exhaustion; while the GFA is not
final it applies one repair rule (Section 6) and resumes rewriting.
Repairs only ever *add* edges, so the final SORE satisfies Theorem 2:
``L(A) ⊆ L(idtd(A))``, with the repairs chosen to keep the superset as
small as possible.

Escalation. The paper's implementation fixes the fuzziness parameter at
``k = 2`` and notes that for any fixed ``k`` there are SOAs where the
restricted variant fails, while "the unrestricted variant always
succeeds".  We implement the unrestricted variant as an escalation
ladder: if no repair applies at the current ``k``, increment ``k``
(Algorithm 2, line 5); if ``k`` exceeds the number of states, contract
a strongly connected component into a disjunction-plus (the standard
coarse generalisation, also used by Trang) which strictly reduces the
state count and therefore guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..automata.gfa import GFA, SINK, SOURCE
from ..automata.soa import SOA
from ..contracts import check_emitted_sore, check_gfa, contracts_enabled
from ..errors import CorpusError, InternalError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..regex.ast import Plus, Regex, disj
from ..regex.normalize import contract_stars, simplify
from ..regex.printer import to_paper_syntax
from .repair import Repair, find_repair
from .rewrite import DEFAULT_ORDER, Application, rewrite_gfa


@dataclass
class IdtdResult:
    """The inferred SORE plus a full trace of how it was obtained."""

    regex: Regex
    steps: list[Application] = field(default_factory=list)
    repairs: list[Repair] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        """Whether the sample was non-representative (repairs were needed)."""
        return bool(self.repairs)


class IdtdError(InternalError):
    """Internal failure of the repair ladder (should be unreachable)."""


def _strongly_connected_components(gfa: GFA) -> list[list[int]]:
    """Tarjan's algorithm over the labelled nodes (iterative)."""
    index_of: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    for root in sorted(gfa.nodes()):
        if root in index_of:
            continue
        work: list[tuple[int, list[int]]] = [
            (root, [n for n in gfa.successors(root) if n not in (SOURCE, SINK)])
        ]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            if successors:
                successor = successors.pop()
                if successor not in index_of:
                    index_of[successor] = low[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (
                            successor,
                            [
                                n
                                for n in gfa.successors(successor)
                                if n not in (SOURCE, SINK)
                            ],
                        )
                    )
                elif successor in on_stack:
                    low[node] = min(low[node], index_of[successor])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    component: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def _contract_scc(gfa: GFA) -> bool:
    """Fallback repair: contract one non-trivial SCC to ``(r1+...+rn)+``.

    Returns True when a contraction happened.  This is the coarse
    generalisation of last resort — it always reduces the node count,
    so the iDTD loop terminates even on adversarial inputs.
    """
    for component in _strongly_connected_components(gfa):
        has_loop = len(component) > 1 or gfa.has_edge(component[0], component[0])
        if not has_loop:
            continue
        for node in component:
            if gfa.has_edge(node, node):
                gfa.remove_edge(node, node)
        labels = sorted(
            (gfa.labels[node] for node in component), key=to_paper_syntax
        )
        merged_label = Plus(disj(*labels)) if len(labels) > 1 else Plus(labels[0])
        merged = gfa.merge(list(component), merged_label)
        if gfa.has_edge(merged, merged):
            gfa.remove_edge(merged, merged)
        return True
    return False


def idtd_from_soa(
    soa: SOA,
    k: int = 2,
    order: Sequence[str] = DEFAULT_ORDER,
    max_rounds: int | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> IdtdResult:
    """Run iDTD on a SOA, always producing a SORE with ``L(A) ⊆ L(r)``.

    ``k`` is the initial fuzziness of the repair preconditions (the
    paper's implementation uses 2); it escalates automatically when no
    repair applies.  ``order`` is the rewrite-rule priority,
    parameterised for the ablation benchmarks.
    """
    gfa = GFA.from_soa(soa)
    if not gfa.nodes():
        raise CorpusError(
            "the SOA has no states: an empty language has no SORE; "
            "handle empty samples at the DTD layer"
        )
    steps: list[Application] = []
    repairs: list[Repair] = []
    rounds_left = max_rounds if max_rounds is not None else 4 * len(gfa.nodes()) + 16
    result = rewrite_gfa(gfa, order=order, recorder=recorder)
    steps.extend(result.steps)
    current_k = k
    while not gfa.is_final():
        if rounds_left <= 0:
            raise IdtdError("repair ladder did not converge")
        rounds_left -= 1
        repair = find_repair(gfa, current_k)
        while repair is None and current_k <= len(gfa.nodes()) + 2:
            current_k += 1  # Algorithm 2, line 5
            repair = find_repair(gfa, current_k)
        if repair is not None:
            repair.apply(gfa)
            repairs.append(repair)
            if contracts_enabled():
                check_gfa(gfa, context=f"repair.{repair.rule}")
            recorder.count("repair.firings")
        elif _contract_scc(gfa):
            if contracts_enabled():
                check_gfa(gfa, context="repair.scc_contraction")
            recorder.count("repair.scc_contractions")
        else:
            # An acyclic stuck graph with no applicable repair: connect
            # everything through the weakest precondition — treat every
            # node as optional-enabled.  In practice unreachable; kept
            # for Theorem 2's unconditional guarantee.
            raise IdtdError(
                "no repair applicable on an acyclic GFA; "
                "this indicates a bug in the repair preconditions"
            )
        result = rewrite_gfa(gfa, order=order, recorder=recorder)
        steps.extend(result.steps)
    regex = contract_stars(simplify(gfa.final_regex()))
    if contracts_enabled():
        check_emitted_sore(regex, context="idtd")
    return IdtdResult(regex=regex, steps=steps, repairs=repairs)


def idtd(
    words: Sequence[Sequence[str]],
    k: int = 2,
    order: Sequence[str] = DEFAULT_ORDER,
    recorder: Recorder = NULL_RECORDER,
) -> Regex:
    """Infer a SORE from example words: 2T-INF then repair-rewrite.

    Empty words in the sample set the SOA's ``accepts_empty`` flag,
    which reaches the rewrite system as a source→sink edge; the
    ``optional`` rule then folds it into the expression (e.g. the
    sample ``{ε, a, b, ab}`` yields ``a? b?``).
    """
    from ..learning.tinf import tinf

    if not any(words):
        raise CorpusError(
            "cannot infer an expression from empty content only"
        )
    soa = tinf(words, recorder=recorder)
    return idtd_from_soa(soa, k=k, order=order, recorder=recorder).regex
