"""Comparing DTDs: schema cleaning and noise analysis as a diff.

Two of the paper's motivating applications reduce to comparing a DTD
inferred from data against a published one:

* **schema cleaning** (Section 1.1) — where is the published schema
  looser than the data warrants? (``refinfo``'s ``volume?/month?``
  vs the real ``(volume | month)?``);
* **noise analysis** — where does the data exceed the official schema?
  (XHTML ``<p>`` elements containing ``table``).

:func:`diff_dtds` classifies every element's content model into
``equal`` / ``tighter`` / ``looser`` / ``incomparable`` /
``missing-old`` / ``missing-new`` using exact language inclusion, plus
example words witnessing each strict difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

from ..regex.ast import Regex, Star, Sym, disj
from ..regex.language import counterexample
from .dtd import Any, Children, ContentModel, Dtd, Empty, Mixed

#: Relation of the NEW model's language to the OLD model's.
Relation = str  # equal | tighter | looser | incomparable | ...


@dataclass(frozen=True)
class ElementDiff:
    """How one element's content model changed from ``old`` to ``new``."""

    element: str
    relation: Relation
    #: a child sequence the old model accepts but the new rejects
    only_in_old: tuple[str, ...] | None = None
    #: a child sequence the new model accepts but the old rejects
    only_in_new: tuple[str, ...] | None = None

    def __str__(self) -> str:
        parts = [f"{self.element}: {self.relation}"]
        if self.only_in_old is not None:
            parts.append(f"old-only example: {' '.join(self.only_in_old) or 'ε'}")
        if self.only_in_new is not None:
            parts.append(f"new-only example: {' '.join(self.only_in_new) or 'ε'}")
        return "; ".join(parts)


def _model_regex(model: ContentModel) -> Regex | None:
    """A regex over child names for the model, or None when anything goes.

    ``EMPTY`` and text-only content have the empty child language,
    rendered as ``(x)?``-style nullable-only via an Opt over an
    impossible branch — we instead special-case them below.
    """
    if isinstance(model, Children):
        return model.regex
    if isinstance(model, Mixed) and model.names:
        return Star(disj(*(Sym(name) for name in model.names)))
    return None


def _compare_models(old: ContentModel, new: ContentModel) -> ElementDiff | None:
    """Relation between two models (without the element name filled in)."""
    if isinstance(old, Any) and isinstance(new, Any):
        return ElementDiff("", "equal")
    if isinstance(old, Any):
        return ElementDiff("", "tighter")
    if isinstance(new, Any):
        return ElementDiff("", "looser")

    old_empty = isinstance(old, Empty) or (
        isinstance(old, Mixed) and not old.names
    )
    new_empty = isinstance(new, Empty) or (
        isinstance(new, Mixed) and not new.names
    )
    if old_empty and new_empty:
        return ElementDiff("", "equal")
    old_regex = _model_regex(old)
    new_regex = _model_regex(new)
    if old_empty:
        # old admits only the empty child sequence
        relation = "looser" if new_regex is not None else "equal"
        return ElementDiff("", relation)
    if new_empty:
        return ElementDiff("", "tighter")
    assert old_regex is not None and new_regex is not None
    new_only = counterexample(new_regex, old_regex)
    old_only = counterexample(old_regex, new_regex)
    if new_only is None and old_only is None:
        return ElementDiff("", "equal")
    if new_only is None:
        return ElementDiff("", "tighter", only_in_old=old_only)
    if old_only is None:
        return ElementDiff("", "looser", only_in_new=new_only)
    return ElementDiff(
        "", "incomparable", only_in_old=old_only, only_in_new=new_only
    )


def iter_diffs(old: Dtd, new: Dtd) -> Iterator[ElementDiff]:
    """Yield one :class:`ElementDiff` per element in either DTD."""
    for element in sorted(set(old.elements) | set(new.elements)):
        old_model = old.elements.get(element)
        new_model = new.elements.get(element)
        if old_model is None:
            yield ElementDiff(element=element, relation="missing-old")
            continue
        if new_model is None:
            yield ElementDiff(element=element, relation="missing-new")
            continue
        comparison = _compare_models(old_model, new_model)
        yield ElementDiff(
            element=element,
            relation=comparison.relation,
            only_in_old=comparison.only_in_old,
            only_in_new=comparison.only_in_new,
        )


def diff_dtds(old: Dtd, new: Dtd) -> list[ElementDiff]:
    """All per-element differences; empty-relation filtering is the
    caller's business (``[d for d in diff if d.relation != "equal"]``)."""
    return list(iter_diffs(old, new))
