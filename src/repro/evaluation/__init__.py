"""Evaluation machinery: metrics, the Figure 4 protocol, timing, tables."""

from .criticality import (
    LEARNERS,
    CurvePoint,
    SuccessCurve,
    figure4_panel,
    learner_reference,
    rewrite_learner,
    success_curve,
)
from .metrics import Fit, conciseness_ratio, equivalent, language_fit, token_count
from .tables import Table, ascii_curve
from .timing import Timed, best_of, timed

__all__ = [
    "CurvePoint",
    "Fit",
    "LEARNERS",
    "SuccessCurve",
    "Table",
    "Timed",
    "ascii_curve",
    "best_of",
    "conciseness_ratio",
    "equivalent",
    "figure4_panel",
    "language_fit",
    "learner_reference",
    "rewrite_learner",
    "success_curve",
    "timed",
    "token_count",
]
