"""Seeded corpora beyond SOREs: repeated symbols and interleaving.

The paper's corpora (Tables 1–2) are single-occurrence: no element
name repeats inside a content model and child order is essentially
fixed.  The generators here produce exactly the data those corpora
cannot — the evaluation and test surface for the ``kore`` and
``sire`` learners:

* **repeated-symbol corpora** — words drawn from a k-occurrence
  target such as ``a b? a``.  The plain SORE learner must merge the
  occurrences (they form a cycle in the 2-gram automaton) and lose
  the count; the ``kore`` learner recovers it.
* **shuffled corpora** — per-block words interleaved at random, with
  a deterministic core that witnesses *both* relative orders for
  every cross-block symbol pair.  The SORE/CHARE learners collapse
  the blocks into one ``(...)*`` soup; the ``sire`` learner
  factorizes them back apart into ``e1 & ... & en``.

Every function is deterministic given the :class:`random.Random`
passed in, so corpora are reproducible from a seed — the property
suites and the determinism fuzz harness rely on that to shrink
failures to a re-runnable seed.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..errors import UsageError
from ..regex.ast import Opt, Regex, Sym, concat, inter
from ..regex.parser import parse_regex
from .strings import Word, random_word, representative_sample, riffle

__all__ = [
    "fuzz_corpus",
    "repeated_symbol_corpus",
    "repeated_symbol_target",
    "shuffled_corpus",
    "shuffled_target",
]


def repeated_symbol_target(symbols: Sequence[str], k: int = 2) -> Regex:
    """A one-unambiguous k-occurrence target over ``symbols``.

    The first symbol anchors ``k`` occurrences; each gap between
    consecutive anchors gets its *own* optional separator symbol from
    the rest of the alphabet, until the symbols run out: ``("a",)``
    with k=3 gives ``a a a``; ``("a", "b", "c")`` with k=3 gives
    ``a b? a c? a``.  Per-gap separators matter: a separator shared
    between two gaps would occupy two different marked slots
    (``b#1`` both before and after ``a#2``), putting a cycle in the
    marked 2-gram automaton that no k-ORE derivation can untangle.
    With distinct separators the marked automaton is a clean chain,
    so ``kore`` recovers exactly this target while the SORE learner
    must merge the anchor occurrences and surrender to a star soup.
    """
    if not symbols:
        raise UsageError("repeated_symbol_target needs at least one symbol")
    if k < 2:
        raise UsageError(f"k must be >= 2 to repeat a symbol, got {k}")
    anchor, rest = symbols[0], symbols[1:]
    parts: list[Regex] = [Sym(anchor)]
    for gap in range(k - 1):
        if gap < len(rest):
            parts.append(Opt(Sym(rest[gap])))
        parts.append(Sym(anchor))
    return concat(*parts)


def repeated_symbol_corpus(
    symbols: Sequence[str],
    count: int,
    rng: random.Random,
    k: int = 2,
) -> tuple[Regex, list[Word]]:
    """``(target, words)``: a seeded corpus from a k-occurrence target.

    The corpus always contains the deterministic representative core
    of the target (every 2-gram witnessed, so the marked automaton is
    fully covered) padded with random draws up to ``count`` words.
    """
    target = repeated_symbol_target(symbols, k)
    words = representative_sample(target)
    while len(words) < count:
        words.append(random_word(target, rng))
    rng.shuffle(words)
    return target, words


def shuffled_target(blocks: Sequence[Regex | str]) -> Regex:
    """The interleaving ``e1 & ... & en`` of per-block expressions.

    Blocks given as strings are parsed in the paper syntax.  Block
    alphabets must be pairwise disjoint — that is what makes the
    target deterministic and the corpus learnable by ``sire``.
    """
    if not blocks:
        raise UsageError("shuffled_target needs at least one block")
    parsed = [
        parse_regex(block) if isinstance(block, str) else block
        for block in blocks
    ]
    claimed: set[str] = set()
    for branch in parsed:
        alphabet = branch.alphabet()
        overlap = claimed & alphabet
        if overlap:
            raise UsageError(
                f"shuffled blocks must have disjoint alphabets; "
                f"{sorted(overlap)} appear twice"
            )
        claimed |= alphabet
    return inter(*parsed) if len(parsed) > 1 else parsed[0]


def shuffled_corpus(
    blocks: Sequence[Regex | str],
    count: int,
    rng: random.Random,
) -> tuple[Regex, list[Word]]:
    """``(target, words)``: a seeded corpus of interleaved block words.

    The deterministic core concatenates one representative word per
    block in forward order and in reverse order — which witnesses both
    relative orders for every cross-block symbol pair, so the learner
    sees every conflict the target implies — plus each block's full
    representative sample riffled into the others.  Random riffles of
    random per-block draws pad the corpus to ``count``.
    """
    target = shuffled_target(blocks)
    parsed = [
        parse_regex(block) if isinstance(block, str) else block
        for block in blocks
    ]
    cores = [representative_sample(branch) for branch in parsed]
    # A nonempty flagship word per block, for the two order-witnessing
    # concatenations (empty words witness no order).
    flagships = [
        next((list(word) for word in core if word), []) for core in cores
    ]
    words: list[Word] = []
    seen: set[Word] = set()

    def emit(word: Word) -> None:
        if word not in seen:
            seen.add(word)
            words.append(word)

    emit(tuple(symbol for flagship in flagships for symbol in flagship))
    emit(
        tuple(
            symbol for flagship in reversed(flagships) for symbol in flagship
        )
    )
    depth = max(len(core) for core in cores)
    for rank in range(depth):
        streams = [
            list(core[rank % len(core)]) for core in cores if core
        ]
        emit(tuple(riffle(streams, rng)))
    while len(words) < count:
        streams = [list(random_word(branch, rng)) for branch in parsed]
        words.append(tuple(riffle(streams, rng)))
    rng.shuffle(words)
    return target, words


def fuzz_corpus(rng: random.Random) -> tuple[str, list[Word]]:
    """One random corpus for the determinism fuzz harness.

    Draws a random shape — repeated-symbol, shuffled, or a shuffle
    whose first block itself repeats a symbol — with random alphabet
    sizes, so a single seed determines the whole corpus.  Returns
    ``(shape, words)``; the shape tag makes failures self-describing.
    """
    shape = rng.choice(("repeated", "shuffled", "mixed"))
    if shape == "repeated":
        width = rng.randint(1, 4)
        symbols = [f"a{i}" for i in range(width)]
        k = rng.randint(2, 4)
        _, words = repeated_symbol_corpus(
            symbols, count=rng.randint(5, 40), rng=rng, k=k
        )
        return shape, words
    block_count = rng.randint(2, 4)
    blocks: list[Regex] = []
    for index in range(block_count):
        names = [f"b{index}x{j}" for j in range(rng.randint(1, 3))]
        parts: list[Regex] = []
        for name in names:
            quantified: Regex = Sym(name)
            roll = rng.random()
            if roll < 0.3:
                quantified = Opt(quantified)
            parts.append(quantified)
        blocks.append(concat(*parts))
    if shape == "mixed":
        blocks[0] = repeated_symbol_target(
            [f"b0r{j}" for j in range(rng.randint(1, 2))], k=rng.randint(2, 3)
        )
    _, words = shuffled_corpus(blocks, count=rng.randint(5, 40), rng=rng)
    return shape, words
