"""Normal forms for regular expressions.

The completeness proof of ``rewrite`` (Claim 1 in Section 5) works with
*normalized* SOREs: the transformations ``(s+)+ → s+``, ``s?? → s?``
and ``(s?)+ → (s+)?`` are applied until no superfluous operators
remain.  The rewrite system itself never emits a Kleene star; it
represents ``r*`` as ``(r+)?``, and a post-processing step contracts
that back to ``r*`` for display.

This module provides both directions plus a canonical form used for
"syntactically equal up to commutativity of +" comparisons (the success
criterion of the Figure 4 experiments, Theorem 5).
"""

from __future__ import annotations

from .ast import Concat, Disj, Opt, Plus, Regex, Repeat, Star, Sym, concat, disj
from .printer import to_paper_syntax


def _rebuild(regex: Regex, children: list[Regex]) -> Regex:
    if isinstance(regex, Concat):
        return concat(*children)
    if isinstance(regex, Disj):
        return disj(*children)
    if isinstance(regex, Opt):
        return Opt(children[0])
    if isinstance(regex, Plus):
        return Plus(children[0])
    if isinstance(regex, Star):
        return Star(children[0])
    if isinstance(regex, Repeat):
        return Repeat(children[0], regex.low, regex.high)
    return regex


def expand_stars(regex: Regex) -> Regex:
    """Replace every ``r*`` by ``(r+)?`` (the rewrite-internal form)."""
    if isinstance(regex, Sym):
        return regex
    children = [expand_stars(child) for child in regex.children()]
    if isinstance(regex, Star):
        return Opt(Plus(children[0]))
    return _rebuild(regex, children)


def contract_stars(regex: Regex) -> Regex:
    """Replace ``(r+)?`` and ``(r?)+`` by ``r*`` (Section 5 post-processing)."""
    if isinstance(regex, Sym):
        return regex
    children = [contract_stars(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    if isinstance(rebuilt, Opt) and isinstance(rebuilt.inner, Plus):
        return Star(rebuilt.inner.inner)
    if isinstance(rebuilt, Plus) and isinstance(rebuilt.inner, Opt):
        return Star(rebuilt.inner.inner)
    return rebuilt


def normalize(regex: Regex) -> Regex:
    """Remove superfluous unary operators, keeping stars contracted.

    Rules applied to a fixpoint, bottom-up::

        r??     -> r?        (r+)+   -> r+       (r*)*  -> r*
        (r?)+   -> r*        (r+)?   -> r*       (r*)?  -> r*
        (r?)*   -> r*        (r+)*   -> r*       (r*)+  -> r*

    The result is language-equivalent and unique for the unary-operator
    layer: at most one of ``?``/``+``/``*`` wraps any subexpression.
    """
    if isinstance(regex, Sym):
        return regex
    children = [normalize(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    if isinstance(rebuilt, Opt):
        inner = rebuilt.inner
        if isinstance(inner, Opt):
            return inner
        if isinstance(inner, (Star,)):
            return inner
        if isinstance(inner, Plus):
            return Star(inner.inner)
        return rebuilt
    if isinstance(rebuilt, Plus):
        inner = rebuilt.inner
        if isinstance(inner, Plus):
            return inner
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Opt):
            return Star(inner.inner)
        return rebuilt
    if isinstance(rebuilt, Star):
        inner = rebuilt.inner
        if isinstance(inner, (Opt, Plus, Star)):
            return Star(normalize(inner.inner))
        return rebuilt
    return rebuilt


def _simplify_once(regex: Regex) -> Regex:
    if isinstance(regex, Sym):
        return regex
    children = [_simplify_once(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    # (x? + y)  ->  (x + y)?   — pull optionality out of a disjunction
    # so the parent operator can absorb it.
    if isinstance(rebuilt, Disj) and any(
        isinstance(option, Opt) for option in rebuilt.options
    ):
        stripped = [
            option.inner if isinstance(option, Opt) else option
            for option in rebuilt.options
        ]
        return Opt(disj(*stripped))
    # (x+ + y)+ -> (x + y)+  and  (x* + y)+ -> (x + y)*: under an outer
    # + or *, per-option repetition adds nothing.
    if isinstance(rebuilt, (Plus, Star)) and isinstance(rebuilt.inner, Disj):
        options = rebuilt.inner.options
        if any(isinstance(option, (Plus, Star)) for option in options):
            stripped = [
                option.inner if isinstance(option, (Plus, Star)) else option
                for option in options
            ]
            saw_star = any(isinstance(option, Star) for option in options)
            core = disj(*stripped)
            if isinstance(rebuilt, Star) or saw_star:
                return Star(core)
            return Plus(core)
    return rebuilt


def simplify(regex: Regex) -> Regex:
    """Language-preserving conciseness cleanup, to a fixpoint.

    Combines :func:`normalize` with two disjunction laws::

        (x? + y)   =  (x + y)?
        (x+ + y)+  =  (x + y)+        (x* + y)+  =  (x + y)*

    These patterns arise when the rewrite rules merge a plus-like state
    with plain states; the paper's reported expressions never contain
    them, so iDTD applies this cleanup to its final output.
    """
    current = normalize(regex)
    while True:
        simplified = normalize(_simplify_once(current))
        if simplified == current:
            return current
        current = simplified


def canonical(regex: Regex) -> Regex:
    """A canonical representative up to commutativity of ``+``.

    Normalizes unary operators and sorts the options of every
    disjunction by their rendered text.  Two expressions are
    "syntactically equal up to commutativity of +" (Theorem 5) iff
    their canonical forms are structurally equal.
    """
    regex = normalize(regex)

    def sort_disjunctions(node: Regex) -> Regex:
        if isinstance(node, Sym):
            return node
        children = [sort_disjunctions(child) for child in node.children()]
        rebuilt = _rebuild(node, children)
        if isinstance(rebuilt, Disj):
            ordered = sorted(rebuilt.options, key=to_paper_syntax)
            return disj(*ordered)
        return rebuilt

    return sort_disjunctions(regex)


def syntactically_equal(first: Regex, second: Regex) -> bool:
    """Equality up to commutativity of ``+`` and operator normal form."""
    return canonical(first) == canonical(second)
