"""Backwards-compatible alias for :mod:`repro.learning.evidence`.

Evidence extraction used to live here; it moved into
:mod:`repro.learning` because folding documents into learner states is
learning-layer work (the streaming representation literally *is* the
incremental learner state).  Keeping an eager ``from ..learning import
…`` re-export would preserve the upward ``xmlio → learning`` import
this move eliminates, so the aliasing is lazy: attribute access loads
the real module on first use (import cost only, the objects returned
are the same ones :mod:`repro.learning.evidence` defines).

New code should import from :mod:`repro.learning.evidence` directly;
the repo's layer table (lint rule R010) places ``repro.xmlio`` below
``repro.learning``, and this shim is the only sanctioned crossing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..learning.evidence import (
        SAMPLE_CAP as SAMPLE_CAP,
        CorpusEvidence as CorpusEvidence,
        ElementEvidence as ElementEvidence,
        StreamingElementEvidence as StreamingElementEvidence,
        StreamingEvidence as StreamingEvidence,
        Word as Word,
        WordBag as WordBag,
        child_sequences as child_sequences,
        extract_evidence as extract_evidence,
        extract_streaming_evidence as extract_streaming_evidence,
    )

__all__ = [
    "SAMPLE_CAP",
    "CorpusEvidence",
    "ElementEvidence",
    "StreamingElementEvidence",
    "StreamingEvidence",
    "Word",
    "WordBag",
    "child_sequences",
    "extract_evidence",
    "extract_streaming_evidence",
]


def __getattr__(name: str) -> Any:
    """Delegate every lookup (public and private) to the real module."""
    from ..learning import evidence

    try:
        return getattr(evidence, name)
    except AttributeError:
        # lint: allow R002 — module __getattr__ must raise AttributeError
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
