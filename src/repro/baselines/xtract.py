"""Re-implementation of XTRACT (Garofalakis et al., 2003).

The paper's main experimental comparator.  XTRACT works in three
stages:

1. **Generalization** — each input string is generalised into candidate
   regular expressions by folding repeated subsequences into ``+``
   terms (``a b b b c`` → ``a b+ c``, ``a b c b c`` → ``a (b c)+``);
2. **Factoring** — candidates are factored, sharing common prefixes and
   suffixes (borrowed from logic optimisation);
3. **MDL selection** — the subset of candidates minimising the Minimum
   Description Length (theory cost + cost of encoding every input
   string with the chosen candidates) becomes the final content model:
   a *disjunction* of the selected candidates.

The third step contains an NP-hard subproblem [Fernau 2004]; like the
original system we solve it greedily with a work budget, and raise
:class:`XtractCapacityError` when the budget is exceeded — standing in
for the out-of-memory crashes the paper reports beyond ~1000 distinct
strings.

The two failure modes the paper demonstrates are inherent and visible
here too: the output is a disjunction of concatenations (while real
DTDs are concatenations of disjunctions), so heterogeneous data yields
long-winded expressions, and cost grows super-linearly with the number
of distinct strings.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence

from ..errors import CorpusError, InternalError
from ..regex.ast import Opt, Plus, Regex, Sym, concat, disj
from ..regex.glushkov import Glushkov, glushkov

Word = tuple[str, ...]


#: A folded sequence: plain symbols interleaved with ``("+", body)``
#: markers produced by repeat folding.
_Folded = tuple["str | tuple[str, tuple[str, ...]]", ...]


class XtractCapacityError(InternalError):
    """The MDL stage exceeded its work budget (cf. the >1000-string
    crashes reported in Section 8)."""


#: Default number of distinct strings the MDL stage accepts, matching
#: the paper's observation that XTRACT cannot handle more than ~1000.
DEFAULT_CAPACITY = 1000


# -- stage 1: generalization ---------------------------------------------------


def _fold_once(word: Word, max_period: int = 4) -> set[_Folded]:
    """All single-fold generalisations of ``word``.

    A fold replaces a maximal run ``v^k`` (k >= 2, ``|v| <= max_period``)
    by the tuple ``("+", v)``.  Items of the produced sequences are
    either symbols or ``("+", v)`` markers.
    """
    results: set[tuple] = set()
    n = len(word)
    for period in range(1, max_period + 1):
        index = 0
        while index + 2 * period <= n:
            pattern = word[index : index + period]
            repeats = 1
            while (
                index + (repeats + 1) * period <= n
                and word[index + repeats * period : index + (repeats + 1) * period]
                == pattern
            ):
                repeats += 1
            if repeats >= 2:
                folded = (
                    word[:index]
                    + (("+", pattern),)
                    + word[index + repeats * period :]
                )
                results.add(folded)
                index += repeats * period
            else:
                index += 1
    return results


def _to_regex(sequence: _Folded) -> Regex:
    parts: list[Regex] = []
    for item in sequence:
        if isinstance(item, tuple) and len(item) == 2 and item[0] == "+":
            inner = concat(*(Sym(s) for s in item[1]))
            parts.append(Plus(inner))
        else:
            parts.append(Sym(item))
    return concat(*parts)


def generalize(word: Word, rounds: int = 3) -> list[Regex]:
    """Stage 1: candidate expressions for one string.

    Folds repeats up to ``rounds`` times (folding can cascade:
    ``a b a b b`` → ``a b (a b+ ...)``), always including the literal
    string itself as a candidate.
    """
    if not word:
        return []
    sequences: set[_Folded] = {tuple(word)}
    frontier: set[_Folded] = {tuple(word)}
    for _ in range(rounds):
        new: set[_Folded] = set()
        for sequence in frontier:
            plain = all(not isinstance(item, tuple) for item in sequence)
            if plain:
                new |= _fold_once(sequence)
        new -= sequences
        if not new:
            break
        sequences |= new
        frontier = new
    return [_to_regex(sequence) for sequence in sorted(sequences, key=_seq_key)]


def _seq_key(sequence: _Folded) -> tuple[tuple[str, ...], ...]:
    return tuple(
        ("+",) + item[1] if isinstance(item, tuple) else (item,)
        for item in sequence
    )


# -- stage 3: MDL selection ----------------------------------------------------


def _theory_cost(candidate: Regex) -> float:
    """Bits to write the candidate down (≈ tokens × log |Σ|-ish)."""
    return 3.0 * candidate.token_count()


def _encoding_cost(candidate: Regex, word: Word) -> float | None:
    """Bits to encode ``word`` given ``candidate``; None if no match.

    Deterministically simulates the Glushkov automaton, charging
    ``log2`` of the number of available moves at each step (the MDL
    "data cost" of XTRACT).
    """
    automaton = glushkov(candidate)
    state: frozenset[int] | None = None
    cost = 0.0
    for symbol in word:
        if state is None:
            moves = automaton.first
        else:
            moves = frozenset(q for p in state for q in automaton.follow[p])
        choices = len({automaton.labels[q] for q in moves}) + (
            1 if _accepting(automaton, state) else 0
        )
        if choices > 1:
            cost += math.log2(choices)
        state = frozenset(
            q
            for q in moves
            if automaton.labels[q] == symbol
        )
        if not state:
            return None
    if not _accepting(automaton, state):
        return None
    return cost


def _accepting(automaton: Glushkov, state: frozenset[int] | None) -> bool:
    if state is None:
        return automaton.nullable
    return any(p in automaton.last for p in state)


def mdl_select(
    candidates: Sequence[Regex],
    words: Sequence[Word],
    budget: int,
) -> list[Regex]:
    """Stage 3: greedy MDL set cover.

    Repeatedly picks the candidate with the best (theory + data) cost
    trade-off until every word is covered.  ``budget`` bounds the
    number of (candidate, word) match evaluations.
    """
    work = 0
    coverage: dict[int, dict[int, float]] = {}
    for c_index, candidate in enumerate(candidates):
        coverage[c_index] = {}
        for w_index, word in enumerate(words):
            work += 1
            if work > budget:
                raise XtractCapacityError(
                    f"MDL budget exceeded: {len(words)} distinct strings x "
                    f"{len(candidates)} candidates"
                )
            cost = _encoding_cost(candidate, word)
            if cost is not None:
                coverage[c_index][w_index] = cost
    uncovered = set(range(len(words)))
    chosen: list[int] = []
    while uncovered:
        best_index, best_score = None, None
        for c_index, covered in coverage.items():
            if c_index in chosen:
                continue
            newly = uncovered & covered.keys()
            if not newly:
                continue
            gain = sum(
                32.0 - covered[w_index] for w_index in newly
            )  # 32 bits ~ cost of leaving a string unexplained
            score = gain - _theory_cost(candidates[c_index])
            if best_score is None or score > best_score:
                best_index, best_score = c_index, score
        if best_index is None:  # should not happen: literals cover everything
            raise XtractCapacityError("MDL selection could not cover the sample")
        chosen.append(best_index)
        uncovered -= coverage[best_index].keys()
    return [candidates[index] for index in sorted(chosen)]


# -- stage 2 (applied last, as a presentation of the selected set) -------------


def _factor(branches: list[Regex]) -> Regex:
    """Stage 2: factor common prefixes out of a candidate disjunction.

    Produces the nested shapes of the paper's Table 1 xtract column,
    e.g. ``a1((a2 a3 a4? + a3 a4) a5? + a3 a5*)``.
    """
    sequences: list[tuple[Regex, ...]] = []
    for branch in branches:
        if hasattr(branch, "parts"):
            sequences.append(tuple(branch.parts))
        else:
            sequences.append((branch,))
    return _factor_sequences(sequences)


def _factor_sequences(sequences: list[tuple[Regex, ...]]) -> Regex:
    sequences = sorted(set(sequences), key=lambda s: tuple(map(repr, s)))
    if len(sequences) == 1:
        (sequence,) = sequences
        return concat(*sequence) if sequence else _EPSILON_MARKER
    groups: dict[Regex | None, list[tuple[Regex, ...]]] = {}
    for sequence in sequences:
        head = sequence[0] if sequence else None
        groups.setdefault(head, []).append(sequence)
    if len(groups) == len(sequences) or None in groups and len(groups) == 2:
        # No shared prefixes worth factoring (or only an ε branch):
        # emit the disjunction, marking the ε branch with ``?``.
        branches = [concat(*sequence) for sequence in sequences if sequence]
        body = disj(*branches)
        return Opt(body) if any(not sequence for sequence in sequences) else body
    factored: list[Regex] = []
    epsilon_branch = False
    for head, group in sorted(
        groups.items(), key=lambda item: repr(item[0])
    ):
        if head is None:
            epsilon_branch = True
            continue
        tails = [sequence[1:] for sequence in group]
        if len(group) == 1:
            factored.append(concat(*group[0]))
        else:
            tail = _factor_sequences(tails)
            if tail is _EPSILON_MARKER:
                factored.append(head)
            elif any(not t for t in tails):
                factored.append(concat(head, Opt(_strip_opt(tail))))
            else:
                factored.append(concat(head, tail))
    body = disj(*factored)
    return Opt(body) if epsilon_branch else body


def _strip_opt(regex: Regex) -> Regex:
    return regex.inner if isinstance(regex, Opt) else regex


class _Epsilon:
    pass


_EPSILON_MARKER: Regex = None  # type: ignore[assignment]


def xtract(
    words: Iterable[Sequence[str]],
    capacity: int = DEFAULT_CAPACITY,
) -> Regex:
    """Run the XTRACT pipeline on a sample.

    ``capacity`` bounds the number of *distinct* strings the MDL stage
    accepts; exceeding it raises :class:`XtractCapacityError` (the
    re-implementation's analogue of the original's crashes on corpora
    beyond ~1000 strings).
    """
    distinct: list[Word] = []
    seen: set[Word] = set()
    multiplicity: Counter[Word] = Counter()
    for word in words:
        key = tuple(word)
        multiplicity[key] += 1
        if key and key not in seen:
            seen.add(key)
            distinct.append(key)
    if not distinct:
        raise CorpusError("cannot infer an expression from empty content only")
    if len(distinct) > capacity:
        raise XtractCapacityError(
            f"{len(distinct)} distinct strings exceed the capacity of {capacity}"
        )
    candidates: list[Regex] = []
    known: set[Regex] = set()
    for word in distinct:
        for candidate in generalize(word):
            if candidate not in known:
                known.add(candidate)
                candidates.append(candidate)
    budget = capacity * max(64, len(candidates))
    selected = mdl_select(candidates, distinct, budget)
    result = _factor(selected)
    if () in multiplicity and not result.nullable():
        result = Opt(result)
    return result
