"""Integration: the full corpus → DTD → validation → XSD loop."""

import random

from repro.core.inference import DTDInferencer
from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.regex.normalize import syntactically_equal
from repro.regex.parser import parse_regex
from repro.xmlio.dtd import Children, parse_dtd
from repro.xmlio.parser import parse_document
from repro.xmlio.validate import validate
from repro.xmlio.xsd import dtd_to_xsd

SOURCE_DTD = parse_dtd(
    """
    <!ELEMENT catalog (product+, vendor*)>
    <!ELEMENT product (name, price, (tag | note)?, review*)>
    <!ELEMENT vendor (name, country?)>
    <!ELEMENT review (#PCDATA)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT tag (#PCDATA)>
    <!ELEMENT note (#PCDATA)>
    <!ELEMENT country (#PCDATA)>
    <!ATTLIST product id NMTOKEN #REQUIRED>
    """
)


def generated_corpus(count=80, seed=7):
    generator = XmlGenerator(
        SOURCE_DTD,
        random.Random(seed),
        text_makers={"price": lambda r: f"{r.randint(1, 999)}.{r.randint(0,99):02d}"},
    )
    return generator.corpus(count)


class TestFullLoop:
    def test_xml_roundtrip_through_serializer(self):
        corpus = generated_corpus(10)
        for document in corpus:
            reparsed = parse_document(serialize(document))
            assert reparsed.root.child_names() == document.root.child_names()

    def test_learned_dtd_validates_corpus(self):
        corpus = generated_corpus()
        inferencer = DTDInferencer(method="idtd")
        learned = inferencer.infer(corpus)
        for document in corpus:
            assert not validate(document, learned)

    def test_learned_content_models_match_source(self):
        corpus = generated_corpus(200, seed=13)
        learned = DTDInferencer(method="idtd").infer(corpus)
        product = learned.elements["product"]
        assert isinstance(product, Children)
        assert syntactically_equal(
            product.regex, parse_regex("name price (tag + note)? review*")
        )

    def test_price_datatype_sniffed(self):
        corpus = generated_corpus(60, seed=3)
        inferencer = DTDInferencer()
        inferencer.infer(corpus)
        assert inferencer.report.text_types["price"] == "xs:decimal"

    def test_xsd_generation_from_learned_dtd(self):
        corpus = generated_corpus(40, seed=5)
        inferencer = DTDInferencer()
        learned = inferencer.infer(corpus)
        xsd = dtd_to_xsd(learned, text_types=inferencer.report.text_types)
        assert xsd.startswith("<?xml")
        assert '<xs:element name="catalog">' in xsd
        assert 'type="xs:decimal"' in xsd

    def test_schema_cleaning_detects_overly_loose_model(self):
        """The paper's motivating scenario: the data is stricter than
        the published DTD, and inference reveals it."""
        corpus = generated_corpus(100, seed=21)
        learned = DTDInferencer(method="idtd").infer(corpus)
        from repro.automata.compare import (
            regex_included_in_soa,
        )
        from repro.regex.language import language_included

        source_model = SOURCE_DTD.content_regex("product")
        learned_model = learned.content_regex("product")
        # learned ⊆ source: everything we admit, the old schema admits
        assert language_included(learned_model, source_model)
