"""Numerical predicates (Section 9)."""

import pytest

from repro.core.numeric import annotate_numeric
from repro.regex.ast import Repeat, Sym
from repro.regex.glushkov import glushkov
from repro.regex.parser import parse_regex
from repro.regex.printer import to_paper_syntax


class TestPaperExample:
    def test_aabb_plus(self):
        """The paper's 'a=2 b>=2' example."""
        regex = parse_regex("a+ b+")
        words = [tuple("aabb"), tuple("aabbb"), tuple("aabbbb")]
        annotated = annotate_numeric(regex, words)
        assert annotated == parse_regex("a{2} b{2,}")
        assert to_paper_syntax(annotated) == "a{2,2} b{2,}"


class TestPolicies:
    def test_constant_count_becomes_exact(self):
        annotated = annotate_numeric(
            parse_regex("x+"), [tuple("xxx"), tuple("xxx")]
        )
        assert annotated == Repeat(Sym("x"), 3, 3)

    def test_varying_counts_with_min_two_become_at_least(self):
        annotated = annotate_numeric(
            parse_regex("x+"), [tuple("xx"), tuple("xxxx")]
        )
        assert annotated == Repeat(Sym("x"), 2, None)

    def test_min_one_stays_plus(self):
        annotated = annotate_numeric(parse_regex("x+"), [tuple("x"), tuple("xxx")])
        assert annotated == parse_regex("x+")

    def test_star_with_zero_stays_star(self):
        annotated = annotate_numeric(
            parse_regex("a x*"), [tuple("a"), tuple("axx")]
        )
        assert annotated == parse_regex("a x*")

    def test_star_never_empty_tightens(self):
        annotated = annotate_numeric(
            parse_regex("a x*"), [tuple("axx"), tuple("axxx")]
        )
        assert annotated == parse_regex("a x{2,}")

    def test_max_exact_cap(self):
        words = [tuple("x" * 30)]
        annotated = annotate_numeric(parse_regex("x+"), words, max_exact=16)
        assert annotated == Repeat(Sym("x"), 30, None)

    def test_nested_loops(self):
        regex = parse_regex("(a b+)+")
        words = [tuple("abbabb"), tuple("abbabb")]
        annotated = annotate_numeric(regex, words)
        # outer loop: always 2; inner loop: always 2
        assert to_paper_syntax(annotated) == "(a b{2,2}){2,2}"


class TestRobustness:
    def test_rejected_words_contribute_nothing(self):
        annotated = annotate_numeric(
            parse_regex("x+"), [tuple("yy"), tuple("xx"), tuple("xx")]
        )
        assert annotated == Repeat(Sym("x"), 2, 2)

    def test_no_accepted_words_returns_original(self):
        regex = parse_regex("x+")
        assert annotate_numeric(regex, [tuple("zz")]) is regex

    def test_non_single_occurrence_rejected(self):
        with pytest.raises(ValueError):
            annotate_numeric(parse_regex("a (a + b)*"), [tuple("ab")])

    def test_annotated_language_still_accepts_sample(self):
        regex = parse_regex("a? (x + y)+ b")
        words = [tuple("axxb"), tuple("xyb"), tuple("ayyb")]
        annotated = annotate_numeric(regex, words)
        automaton = glushkov(annotated)
        for word in words:
            assert automaton.accepts(word)
