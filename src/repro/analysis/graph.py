"""A small deterministic directed-graph library for the analyzer.

The whole-program rules (R006-R010) all reduce to graph questions:
which functions are reachable from the async roots, does the eager
import graph have a cycle, is the lock-acquisition order consistent.
:class:`DiGraph` keeps insertion-independent deterministic ordering
(nodes and successors iterate sorted) so analyzer output is stable
across runs and platforms, which the golden-snapshot tests rely on.

Nothing here knows about Python source; it is pure graph machinery:

* :meth:`DiGraph.reachable_from` — BFS closure over a set of roots,
  returning both the closure and a ``provenance`` map from each
  reached node to the root that first reached it (rules use it to
  name the offending async root in a finding message);
* :meth:`DiGraph.strongly_connected_components` — Tarjan's algorithm,
  iterative so deep import chains cannot blow the recursion limit;
* :meth:`DiGraph.cycles` — the non-trivial SCCs (size two or more,
  or a self-loop), which is exactly the "has a cycle" question both
  R007 (lock order) and R010 (import cycles) ask.
"""

from __future__ import annotations

from collections import deque

__all__ = ["DiGraph", "Reachability"]


class Reachability:
    """A BFS closure: the reached set plus per-node provenance."""

    __slots__ = ("reached", "provenance")

    def __init__(
        self, reached: set[str], provenance: dict[str, str]
    ) -> None:
        self.reached = reached
        self.provenance = provenance

    def __contains__(self, node: str) -> bool:
        return node in self.reached

    def root_of(self, node: str) -> str | None:
        """The root that first reached ``node`` (itself for roots)."""
        return self.provenance.get(node)


class DiGraph:
    """A directed graph over string node ids with deterministic order."""

    def __init__(self) -> None:
        self._succ: dict[str, set[str]] = {}
        self._edge_count = 0

    def add_node(self, node: str) -> None:
        self._succ.setdefault(node, set())

    def add_edge(self, src: str, dst: str) -> None:
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._succ[src]:
            self._succ[src].add(dst)
            self._edge_count += 1

    def __contains__(self, node: str) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self) -> list[str]:
        return sorted(self._succ)

    def successors(self, node: str) -> list[str]:
        return sorted(self._succ.get(node, ()))

    def edges(self) -> list[tuple[str, str]]:
        return [
            (src, dst)
            for src in self.nodes()
            for dst in self.successors(src)
        ]

    def reachable_from(self, roots: list[str] | set[str]) -> Reachability:
        """BFS closure of ``roots``; provenance maps node -> first root."""
        reached: set[str] = set()
        provenance: dict[str, str] = {}
        queue: deque[str] = deque()
        for root in sorted(roots):
            if root in self._succ and root not in reached:
                reached.add(root)
                provenance[root] = root
                queue.append(root)
        while queue:
            current = queue.popleft()
            origin = provenance[current]
            for nxt in self.successors(current):
                if nxt not in reached:
                    reached.add(nxt)
                    provenance[nxt] = origin
                    queue.append(nxt)
        return Reachability(reached, provenance)

    def strongly_connected_components(self) -> list[list[str]]:
        """Tarjan's SCCs, iterative; components and members sorted."""
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = 0

        for start in self.nodes():
            if start in index:
                continue
            # Each frame is (node, iterator position over successors).
            work: list[tuple[str, int]] = [(start, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                successors = self.successors(node)
                recursed = False
                for offset in range(pos, len(successors)):
                    succ = successors[offset]
                    if succ not in index:
                        work.append((node, offset + 1))
                        work.append((succ, 0))
                        recursed = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recursed:
                    continue
                if lowlink[node] == index[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        components.sort()
        return components

    def cycles(self) -> list[list[str]]:
        """Non-trivial SCCs: size >= 2, or a single node with a self-loop."""
        found: list[list[str]] = []
        for component in self.strongly_connected_components():
            if len(component) > 1:
                found.append(component)
            else:
                only = component[0]
                if only in self._succ.get(only, ()):
                    found.append(component)
        return found
