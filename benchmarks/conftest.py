"""Shared configuration for the benchmark harness.

Every module regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and prints the paper-vs-measured rows;
run with ``pytest benchmarks/ --benchmark-only -s`` to see them.

Scale: the environment variable ``REPRO_BENCH_SCALE`` picks between

* ``quick`` (default) — reduced trial counts and sample sizes so the
  whole harness completes in a couple of minutes;
* ``full``  — the paper's sample sizes (e.g. 10 000 strings for
  example4 and 200 subsample trials per Figure 4 point).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchScale:
    name: str
    figure4_trials: int  # paper: 200
    figure4_points: int  # grid resolution per panel
    xtract_cap: int  # strings fed to xtract
    performance_strings: int  # paper: 10000
    noise_words: int

    @property
    def is_full(self) -> bool:
        return self.name == "full"


_SCALES = {
    "quick": BenchScale(
        name="quick",
        figure4_trials=20,
        figure4_points=6,
        xtract_cap=150,
        performance_strings=2000,
        noise_words=400,
    ),
    "full": BenchScale(
        name="full",
        figure4_trials=200,
        figure4_points=10,
        xtract_cap=500,
        performance_strings=10000,
        noise_words=5000,
    ),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return _SCALES[os.environ.get("REPRO_BENCH_SCALE", "quick")]


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20060912)
