"""The checkpoint state codec: roundtrips, digests, corruption.

The codec is the durability boundary — everything the runner trusts
on resume went through :func:`encode_state` once.  These tests pin the
two properties the resume proof needs: decode(encode(x)) reproduces
the learner states exactly (byte-identical rendered DTDs), and any
tampering — bit flips, truncation, wrong magic/version, stale payload
length — is *detected*, never silently folded in.
"""

from __future__ import annotations

import json

import pytest

from repro.ckpt.codec import (
    StateDecodeError,
    decode_state,
    encode_state,
    evidence_digest,
    file_sha256,
    read_state,
    write_state,
)
from repro.core.inference import DTDInferencer
from repro.runtime.parallel import extract_from_paths

from .conftest import write_corpus


def render(evidence) -> str:
    return DTDInferencer().infer_from_streaming(evidence).render()


def make_evidence(tmp_path, count=12, seed=None):
    return extract_from_paths(write_corpus(tmp_path, count, seed=seed))


class TestRoundtrip:
    def test_decode_inverts_encode(self, tmp_path):
        evidence = make_evidence(tmp_path)
        restored = decode_state(encode_state(evidence))
        assert render(restored) == render(evidence)
        assert evidence_digest(restored) == evidence_digest(evidence)

    def test_digest_is_content_address(self, tmp_path):
        for name in ("a", "b", "c"):
            (tmp_path / name).mkdir()
        one = make_evidence(tmp_path / "a", seed=5)
        same = make_evidence(tmp_path / "b", seed=5)
        other = make_evidence(tmp_path / "c", seed=6)
        assert evidence_digest(one) == evidence_digest(same)
        assert evidence_digest(one) != evidence_digest(other)

    def test_text_value_reservoir_order_survives(self, tmp_path):
        # The sample reservoirs are order-sensitive (first SAMPLE_CAP
        # values win); a codec that sorted them would still render the
        # same DTD on most corpora, so check the payload directly.
        evidence = make_evidence(tmp_path)
        element = evidence.elements["name"]
        restored = decode_state(encode_state(evidence)).elements["name"]
        assert restored.text_values == element.text_values

    def test_write_read_state_file(self, tmp_path):
        evidence = make_evidence(tmp_path)
        target = tmp_path / "shard.state"
        digest = write_state(target, evidence)
        assert digest == evidence_digest(evidence)
        assert render(read_state(target)) == render(evidence)
        assert not list(tmp_path.glob("*.tmp.*"))  # no temp debris


class TestCorruptionDetection:
    def test_flipped_payload_byte(self, tmp_path):
        data = bytearray(encode_state(make_evidence(tmp_path)))
        data[-2] ^= 0x01
        with pytest.raises(StateDecodeError):
            decode_state(bytes(data))

    def test_truncated_payload(self, tmp_path):
        data = encode_state(make_evidence(tmp_path))
        with pytest.raises(StateDecodeError):
            decode_state(data[: len(data) // 2])

    def test_wrong_magic_and_version(self, tmp_path):
        data = encode_state(make_evidence(tmp_path))
        header_line, payload = data.split(b"\n", 1)
        header = json.loads(header_line)
        for key, value in (("magic", "not-a-state"), ("version", 999)):
            bad = dict(header, **{key: value})
            blob = json.dumps(bad).encode() + b"\n" + payload
            with pytest.raises(StateDecodeError):
                decode_state(blob)

    def test_not_even_json(self):
        with pytest.raises(StateDecodeError):
            decode_state(b"<html>surprise</html>\n{}")
        with pytest.raises(StateDecodeError):
            decode_state(b"")

    def test_read_state_missing_file(self, tmp_path):
        with pytest.raises(StateDecodeError):
            read_state(tmp_path / "never-written.state")


class TestFileSha256:
    def test_matches_hashlib_over_content(self, tmp_path):
        import hashlib

        path = tmp_path / "doc.xml"
        path.write_bytes(b"<r/>" * 1000)
        assert file_sha256(path) == hashlib.sha256(b"<r/>" * 1000).hexdigest()

    def test_rename_preserves_hash(self, tmp_path):
        path = tmp_path / "before.xml"
        path.write_text("<r><item><name>x</name></item></r>")
        digest = file_sha256(path)
        moved = tmp_path / "after.xml"
        path.rename(moved)
        assert file_sha256(moved) == digest
