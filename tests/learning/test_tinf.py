"""2T-INF and the k-testable generalisation (Section 4)."""

from hypothesis import given, settings

from repro.learning.tinf import ktinf, sample_two_grams, tinf

from ..conftest import word_samples


class TestTwoGrams:
    def test_paper_running_example(self):
        """w = bacacdacde has 2-grams {ba, ac, ca, cd, da, de}."""
        initial, final, grams, alphabet, has_empty = sample_two_grams(
            [tuple("bacacdacde")]
        )
        assert grams == {
            ("b", "a"), ("a", "c"), ("c", "a"), ("c", "d"), ("d", "a"),
            ("d", "e"),
        }
        assert initial == {"b"} and final == {"e"}
        assert not has_empty

    def test_empty_words_flagged(self):
        *_, has_empty = sample_two_grams([(), ("a",)])
        assert has_empty


class TestTinf:
    def test_figure1_automaton(self):
        words = [tuple(w) for w in ["bacacdacde", "cbacdbacde", "abccaadcde"]]
        soa = tinf(words)
        assert soa.initial == {"a", "b", "c"}
        assert soa.final == {"e"}
        expected = "aa ad ac ab ba bc cb cc ca cd da db dc de"
        assert soa.edges == {(g[0], g[1]) for g in expected.split()}

    def test_figure2_automaton_is_smaller(self):
        fig1 = tinf([tuple(w) for w in ["bacacdacde", "cbacdbacde", "abccaadcde"]])
        fig2 = tinf([tuple(w) for w in ["bacacdacde", "cbacdbacde"]])
        assert fig2.edges < fig1.edges
        assert fig2.initial < fig1.initial

    @settings(max_examples=60, deadline=None)
    @given(word_samples())
    def test_sample_always_accepted(self, words):
        """The inferred automaton covers the sample (smallest 2-testable)."""
        soa = tinf(words)
        for word in words:
            assert soa.accepts(word)

    @settings(max_examples=40, deadline=None)
    @given(word_samples())
    def test_monotone_in_the_sample(self, words):
        """More data, larger (or equal) language."""
        half = words[: max(1, len(words) // 2)]
        assert tinf(half).language_included(tinf(words))

    def test_empty_sample(self):
        soa = tinf([])
        assert not soa.symbols
        assert not soa.accepts(("a",))


class TestKTestable:
    def test_k2_agrees_with_soa_on_sample(self):
        words = [tuple(w) for w in ["abab", "abb", "ba"]]
        automaton = ktinf(words, k=2)
        soa = tinf(words)
        for word in words:
            assert automaton.accepts(word) and soa.accepts(word)

    def test_k3_is_stricter_than_k2(self):
        words = [tuple("abc"), tuple("cab")]
        k2 = ktinf(words, k=2)
        k3 = ktinf(words, k=3)
        witness = tuple("abcab")  # all 2-grams seen, 3-gram 'bca' unseen
        assert k2.accepts(witness)
        assert not k3.accepts(witness)
        for word in words:
            assert k2.accepts(word) and k3.accepts(word)

    def test_short_words_memorised(self):
        automaton = ktinf([("a",), ("a", "b", "c")], k=3)
        assert automaton.accepts(("a",))
        assert not automaton.accepts(("b",))

    def test_invalid_k(self):
        import pytest

        with pytest.raises(ValueError):
            ktinf([], k=1)
