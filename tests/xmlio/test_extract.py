"""Evidence extraction from parsed corpora."""

from repro.xmlio.extract import (
    SAMPLE_CAP,
    WordBag,
    child_sequences,
    extract_evidence,
    extract_streaming_evidence,
)
from repro.xmlio.parser import parse_document


def docs(*texts):
    return [parse_document(text) for text in texts]


class TestChildSequences:
    def test_sequences_in_document_order(self):
        corpus = docs("<r><a/><b/><a/></r>", "<r><b/></r>")
        assert child_sequences(corpus, "r") == [("a", "b", "a"), ("b",)]

    def test_nested_occurrences_collected(self):
        corpus = docs("<r><a><r><b/></r></a></r>")
        assert child_sequences(corpus, "r") == [("a",), ("b",)]


class TestEvidence:
    def test_occurrences_and_sequences(self):
        corpus = docs("<r><a/><a/></r>", "<r/>")
        evidence = extract_evidence(corpus)
        assert evidence.elements["r"].occurrences == 2
        assert evidence.elements["r"].child_sequences == [("a", "a"), ()]
        assert evidence.elements["a"].occurrences == 2

    def test_text_detection(self):
        corpus = docs("<r><a>text</a><b>  </b></r>")
        evidence = extract_evidence(corpus)
        assert evidence.elements["a"].has_text
        assert not evidence.elements["b"].has_text  # whitespace only

    def test_attribute_statistics(self):
        corpus = docs('<r><a x="1"/><a x="2" y="z"/></r>')
        element = extract_evidence(corpus).elements["a"]
        assert element.attribute_presence == {"x": 2, "y": 1}
        assert element.attribute_values["x"] == ["1", "2"]

    def test_majority_root(self):
        corpus = docs("<r/>", "<r/>", "<other/>")
        assert extract_evidence(corpus).majority_root() == "r"

    def test_empty_corpus(self):
        evidence = extract_evidence([])
        assert evidence.majority_root() is None
        assert evidence.samples() == {}

    def test_text_values_collected_for_sniffing(self):
        corpus = docs("<r><y>1999</y><y>2006</y></r>")
        assert extract_evidence(corpus).elements["y"].text_values == [
            "1999",
            "2006",
        ]

    def test_repeated_sequences_stored_deduplicated(self):
        corpus = docs(*["<r><a/><a/></r>"] * 500)
        bag = extract_evidence(corpus).elements["r"].child_sequences
        assert len(bag.counts) == 1  # one distinct word...
        assert bag.counts[("a", "a")] == 500  # ...with its multiplicity
        assert len(bag) == 500
        assert list(bag) == [("a", "a")] * 500

    def test_merge_combines_shards(self):
        left = extract_evidence(docs("<r><a/></r>", "<r><a/><b/></r>"))
        right = extract_evidence(docs('<r x="1">t</r>', "<other/>"))
        left.merge(right)
        assert left.document_count == 4
        assert left.elements["r"].occurrences == 3
        assert left.elements["r"].child_sequences == [("a",), ("a", "b"), ()]
        assert left.elements["r"].has_text
        assert left.elements["r"].attribute_presence == {"x": 1}
        assert left.majority_root() == "r"


class TestWordBag:
    def test_counts_and_iteration_order(self):
        bag = WordBag([("a",), ("b",), ("a",)])
        assert len(bag) == 3
        assert bag.nonempty_total == 3
        assert list(bag) == [("a",), ("a",), ("b",)]  # grouped, first-seen

    def test_empty_word_tracking(self):
        bag = WordBag([(), ("a",)])
        assert bag.has_empty()
        assert bag.nonempty_total == 1
        assert WordBag([("a",)]).has_empty() is False

    def test_equality_with_lists_is_multiset(self):
        bag = WordBag([("a",), ("b",), ("a",)])
        assert bag == [("a",), ("b",), ("a",)]
        assert bag == [("b",), ("a",), ("a",)]
        assert bag != [("a",), ("b",)]

    def test_merge_sums_multiplicities(self):
        left, right = WordBag([("a",)]), WordBag([("a",), ("b",)])
        left.merge(right)
        assert left.counts == {("a",): 2, ("b",): 1}
        assert left.total == 3


class TestStreamingEvidence:
    def test_constant_size_in_occurrence_count(self):
        corpus = docs(*["<r><a/><a/></r>"] * 300)
        evidence = extract_streaming_evidence(corpus)
        element = evidence.elements["r"]
        assert element.occurrences == 300
        assert element.nonempty_count == 300
        # no per-occurrence storage: one SOA edge, one CRX profile
        assert len(element.soa.soa.edges) == 1
        assert len(element.crx.state.profiles) == 1

    def test_counters_and_alphabet(self):
        corpus = docs("<r><a/><b/></r>", "<r/>", "<r>text</r>")
        element = extract_streaming_evidence(corpus).elements["r"]
        assert element.nonempty_count == 1
        assert element.empty_count == 2
        assert element.has_text
        assert element.child_alphabet == {"a", "b"}

    def test_merge_matches_single_pass(self):
        texts = ["<r><a/></r>", "<r><a/><b/></r>", '<r x="1"/>', "<other/>"]
        whole = extract_streaming_evidence(docs(*texts))
        left = extract_streaming_evidence(docs(*texts[:2]))
        right = extract_streaming_evidence(docs(*texts[2:]))
        left.merge(right)
        assert left.document_count == whole.document_count
        assert left.majority_root() == whole.majority_root()
        for name in whole.elements:
            one, two = left.elements[name], whole.elements[name]
            assert one.occurrences == two.occurrences
            assert one.soa.soa == two.soa.soa
            assert one.crx.state.profiles == two.crx.state.profiles
            assert one.attribute_presence == two.attribute_presence

    def test_reservoirs_capped(self):
        evidence = extract_streaming_evidence(
            docs(*[f"<r><t>v{i}</t></r>" for i in range(SAMPLE_CAP + 5)])
        )
        assert len(evidence.elements["t"].text_values) == SAMPLE_CAP
