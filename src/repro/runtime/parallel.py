"""Map-reduce DTD inference over corpus shards (Section 9, scaled out).

Both learners keep internal state that is tiny compared to the corpus
(the SOA triple for iDTD; the arrow relation plus occurrence profiles
for CRX) and that state merges associatively.  That makes inference
embarrassingly data-parallel:

* **map** — each worker parses its shard of document *paths* and folds
  them into a :class:`~repro.learning.evidence.StreamingEvidence` (constant
  memory in shard size; only file paths cross the process boundary on
  the way in, only learner states on the way out);
* **reduce** — shard states merge in shard order, which reproduces the
  batch evidence exactly (including the bounded text/attribute
  reservoirs, because shards are contiguous chunks of the corpus);
* **finalize** — one :class:`~repro.core.inference.DTDInferencer` pass
  over the merged states.

The result is byte-identical to batch inference on the same corpus —
property-tested in ``tests/runtime/test_parallel.py``.

Instrumentation rides the same rails as the evidence: each worker runs
a private :class:`~repro.obs.recorder.StatsRecorder`, ships its plain
``snapshot()`` dict back with the evidence, and the driver folds the
snapshots into its own recorder via ``merge_snapshot`` (tagging each
with its shard index) — the observability monoid merged alongside the
evidence monoid.

Scheduling is adaptive: ``backend="auto"`` (the default) picks
``serial``/``thread``/``process`` from the corpus size and
``os.cpu_count()`` (:func:`choose_backend`), clamps the shard count to
the CPUs, and falls back to serial when shards would hold fewer than
:data:`MIN_DOCS_PER_SHARD` documents — on small corpora pool dispatch
costs more than it saves.  Worker pools are *warm*: one process pool
and one thread pool per interpreter, lazily created, reused across
``api.infer`` calls and shut down at exit (:class:`WorkerPool`), so
repeated inferences stop paying pool startup.
"""

from __future__ import annotations

import atexit
import os
import threading
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import TypeVar
from collections.abc import Callable, Iterable, Sequence

from ..contracts import check_merge_commutative, contracts_enabled
from ..core.inference import DTDInferencer, Method
from ..errors import InternalError, UsageError, legacy_entry_point
from ..obs.recorder import NULL_RECORDER, Recorder, Snapshot, StatsRecorder
from ..xmlio.dtd import Dtd
from ..learning.evidence import StreamingEvidence
from ..xmlio.parser import parse_file

Backend = str  # "auto" | "process" | "thread" | "serial"

#: Every value ``backend=`` accepts, public for CLI/config validation.
BACKENDS = ("auto", "process", "thread", "serial")

#: The minimum-work threshold: below this many documents per shard the
#: adaptive scheduler runs serial — dispatch and state transfer cost
#: more than the parallelism recovers on corpora this small.
MIN_DOCS_PER_SHARD = 8

#: Below this many documents the adaptive scheduler prefers the thread
#: pool: threads overlap file I/O during parsing at near-zero startup
#: cost, while a process pool's spawn/transfer overhead needs a larger
#: corpus to amortize (see ``benchmarks/bench_cache.py``).
PROCESS_CORPUS_FLOOR = 64


def choose_backend(
    documents: int, jobs: int | None = None, cpus: int | None = None
) -> tuple[Backend, int]:
    """The cost model: pick ``(backend, shards)`` for ``documents``.

    ``jobs`` caps the shard count (``None`` means "up to the CPU
    count"); the result is additionally clamped to ``cpus`` — more
    workers than CPUs only adds scheduling overhead — and to the
    :data:`MIN_DOCS_PER_SHARD` work floor.  One CPU, one shard, or a
    tiny corpus all collapse to ``("serial", 1)``.
    """
    if cpus is None:
        cpus = os.cpu_count() or 1
    requested = jobs if jobs is not None else cpus
    shards = max(1, min(requested, cpus, documents // MIN_DOCS_PER_SHARD))
    if cpus <= 1 or shards <= 1:
        return "serial", 1
    if documents < PROCESS_CORPUS_FLOOR:
        return "thread", shards
    return "process", shards


class WorkerPool:
    """A lazily-created warm executor of one kind, reused across calls.

    The pool is created on first :meth:`executor` call (sized to the
    CPU count), healed transparently if a worker death broke it, and
    shut down at interpreter exit — so a service calling
    :func:`repro.api.infer` repeatedly pays process startup once, not
    per inference.

    Creation, healing and shutdown are serialized on an internal lock:
    the serve daemon's worker threads all funnel into the same warm
    pool, and an unlocked lazy create would let two first-callers race
    to build executors (one of which would leak, its workers never
    shut down).
    """

    def __init__(self, kind: Backend) -> None:
        if kind not in ("process", "thread"):
            raise UsageError(
                f"warm pools exist for 'process' and 'thread', not {kind!r}"
            )
        self.kind = kind
        self._lock = threading.Lock()
        self._executor: Executor | None = None

    @property
    def live(self) -> bool:
        """Whether a usable executor currently exists."""
        return self._executor is not None and not getattr(
            self._executor, "_broken", False
        )

    def executor(self, max_workers: int | None = None) -> Executor:
        """The warm executor, creating (or healing) it if necessary.

        ``max_workers`` only matters at creation time; both executor
        kinds spawn workers lazily up to the bound, so sizing once at
        creation covers every later shard plan.  The default sizing is
        the CPU count for process pools and the stdlib's I/O-friendly
        ``min(32, cpus + 4)`` for thread pools.
        """
        with self._lock:
            if self._executor is not None and getattr(
                self._executor, "_broken", False
            ):
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            if self._executor is None:
                cpus = os.cpu_count() or 1
                if self.kind == "thread":
                    workers = (
                        max_workers if max_workers else min(32, cpus + 4)
                    )
                    self._executor = ThreadPoolExecutor(max_workers=workers)
                else:
                    workers = max_workers if max_workers else cpus
                    self._executor = ProcessPoolExecutor(max_workers=workers)
            return self._executor

    def shutdown(self) -> None:
        """Shut the executor down; the next use lazily recreates it."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


_WARM_POOLS: dict[str, WorkerPool] = {
    "process": WorkerPool("process"),
    "thread": WorkerPool("thread"),
}


def warm_pool(kind: Backend) -> WorkerPool:
    """The process-wide warm pool for ``kind`` (``process``/``thread``).

    Every caller resolves ``kind`` through validated backend selection
    first, so a miss here is runtime bookkeeping gone wrong (a shard
    scheduled against a pool kind that was never provisioned), not a
    user mistake — hence :class:`~repro.errors.InternalError`.
    """
    try:
        return _WARM_POOLS[kind]
    except KeyError:
        raise InternalError(
            f"no warm pool provisioned for backend {kind!r} (pools exist "
            f"for: {', '.join(sorted(_WARM_POOLS))}); backend selection "
            "should have rejected this kind before dispatch"
        ) from None


def shutdown_warm_pools() -> None:
    """Shut down every warm pool (registered to run at exit).

    Safe to call repeatedly; pools recreate lazily on next use.
    """
    for pool in _WARM_POOLS.values():
        pool.shutdown()


atexit.register(shutdown_warm_pools)


def shard_paths(paths: Sequence[str], shards: int) -> list[list[str]]:
    """Split ``paths`` into at most ``shards`` contiguous chunks.

    Chunks are contiguous (not round-robin) and returned in corpus
    order so that merging shard evidence left-to-right visits values in
    the same order as a sequential pass — the property that keeps the
    capped text/attribute reservoirs identical to the batch path.
    """
    paths = list(paths)
    if not paths:
        return []
    shards = max(1, min(shards, len(paths)))
    base, extra = divmod(len(paths), shards)
    chunks: list[list[str]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(paths[start : start + size])
        start += size
    return chunks


def extract_from_paths(
    paths: Iterable[str], recorder: Recorder = NULL_RECORDER
) -> StreamingEvidence:
    """The map step: parse each file and fold it into streaming state.

    Documents are parsed one at a time and released immediately; the
    worker's footprint is one document plus the learner states.
    """
    evidence = StreamingEvidence()
    for path in paths:
        document = parse_file(path, recorder)
        with recorder.span("extract", file=str(path)):
            evidence.add_document(document, recorder)
    return evidence


def _extract_shard_recorded(
    task: tuple[int, Sequence[str]],
) -> tuple[StreamingEvidence, Snapshot]:
    """Worker body for instrumented runs: evidence plus a stats snapshot.

    Module-level (not a closure) so it pickles into process pools.  The
    recorder is created inside the worker and only its plain-dict
    snapshot travels back across the process boundary.
    """
    index, paths = task
    recorder = StatsRecorder()
    with recorder.span("shard", index=index, files=len(paths)):
        evidence = extract_from_paths(paths, recorder)
    return evidence, recorder.snapshot()


_TaskT = TypeVar("_TaskT")
_ResultT = TypeVar("_ResultT")


def _pooled_results(
    pool: WorkerPool,
    worker: Callable[[_TaskT], _ResultT],
    work: Sequence[_TaskT],
    on_result: Callable[[int, _ResultT], None] | None = None,
) -> list[_ResultT]:
    """Run ``work`` on the warm pool, surviving one worker death per task.

    The ``executor.map`` this replaces surfaced a dead process-pool
    worker as ``BrokenProcessPool`` for the *entire* batch.  Here each
    task's future is gathered individually: a broken pool is healed
    (:meth:`WorkerPool.executor` rebuilds it) and the task resubmitted
    once.  A second break on the same task means the failure travels
    *with the task* — a worker-killing bug, not a transient — and
    surfaces as :class:`~repro.errors.InternalError` naming the shard.
    Results come back in submission order, like ``map``.

    Richer policies (bounded retries with backoff, per-shard deadlines,
    reshard-to-serial, fault injection) live in
    :func:`repro.runtime.resilience.resilient_evidence`, which callers
    opt into via ``on_error=`` / fault plans.

    ``on_result`` (when given) fires in the gathering thread, in
    submission order, as each result becomes available — the hook
    :mod:`repro.ckpt` uses to commit a durable checkpoint per shard
    before later shards are even gathered.
    """
    futures = [pool.executor().submit(worker, task) for task in work]
    results: list[_ResultT] = []
    for index, task in enumerate(work):
        try:
            result = futures[index].result()
        except BrokenExecutor:
            try:
                result = pool.executor().submit(worker, task).result()
            except BrokenExecutor:
                raise InternalError(
                    f"worker pool broke twice while processing shard "
                    f"{index}: the failure reproduces on resubmission, so "
                    "a worker-killing bug travels with this shard's input"
                ) from None
        if on_result is not None:
            on_result(index, result)
        results.append(result)
    return results


def run_shard_tasks(
    chosen: Backend,
    shards: Sequence[Sequence[str]],
    recorder: Recorder = NULL_RECORDER,
    on_result: Callable[[int, StreamingEvidence, Snapshot | None], None]
    | None = None,
) -> list[tuple[StreamingEvidence, Snapshot | None]]:
    """Extract every shard on an already-resolved backend.

    The lower half of :func:`parallel_evidence`, exposed for callers —
    :func:`repro.ckpt.runner.checkpointed_evidence` — that plan their
    own shard lists but want the same dispatch machinery: serial runs
    inline, ``thread``/``process`` use the warm pools with single-retry
    healing.  Results return in shard (corpus) order; ``on_result``
    fires once per shard *in that order* as results land, so a caller
    can durably commit shard ``i`` before shard ``i+1`` is gathered.

    With a live ``recorder`` each shard runs under its own
    :class:`StatsRecorder` and its snapshot is returned (not merged —
    the caller owns merge order); otherwise the snapshot slot is None.
    """
    if chosen == "serial":
        results: list[tuple[StreamingEvidence, Snapshot | None]] = []
        for index, shard in enumerate(shards):
            if recorder.enabled:
                evidence, snapshot = _extract_shard_recorded((index, shard))
            else:
                evidence, snapshot = extract_from_paths(shard), None
            if on_result is not None:
                on_result(index, evidence, snapshot)
            results.append((evidence, snapshot))
        return results
    pool = warm_pool(chosen)
    if recorder.enabled:

        def recorded_hook(
            index: int, result: tuple[StreamingEvidence, Snapshot]
        ) -> None:
            if on_result is not None:
                on_result(index, result[0], result[1])

        recorded = _pooled_results(
            pool,
            _extract_shard_recorded,
            list(enumerate(shards)),
            on_result=recorded_hook,
        )
        return [(evidence, snapshot) for evidence, snapshot in recorded]

    def plain_hook(index: int, evidence: StreamingEvidence) -> None:
        if on_result is not None:
            on_result(index, evidence, None)

    plain = _pooled_results(
        pool,
        extract_from_paths,
        [list(shard) for shard in shards],
        on_result=plain_hook,
    )
    return [(evidence, None) for evidence in plain]


def merge_evidence(parts: Iterable[StreamingEvidence]) -> StreamingEvidence:
    """The reduce step: fold shard evidence together, left to right."""
    merged = StreamingEvidence()
    for part in parts:
        if contracts_enabled():
            check_merge_commutative(merged, part)
        merged.merge(part)
    return merged


def parallel_evidence(
    paths: Sequence[str],
    jobs: int | None = None,
    backend: Backend = "auto",
    executor: Executor | None = None,
    recorder: Recorder = NULL_RECORDER,
) -> StreamingEvidence:
    """Extract streaming evidence from ``paths`` using ``jobs`` workers.

    ``backend="auto"`` (the default) runs the :func:`choose_backend`
    cost model: shard count clamped to the CPUs and to ``jobs``, serial
    below the :data:`MIN_DOCS_PER_SHARD` work floor, threads for small
    corpora and the warm process pool for large ones.  An explicit
    ``backend`` skips the cost model (``jobs=None`` then means the CPU
    count, and a single job or single file still degrades to serial).

    Precedence: a caller-supplied ``executor`` always wins.  Combining
    one with an explicit (non-``"auto"``) ``backend`` is contradictory
    and raises a :class:`RuntimeWarning`; the executor is used.

    ``jobs`` must be positive when given; ``jobs=0`` or negative raises
    :class:`~repro.errors.UsageError` instead of silently degrading.

    With a live ``recorder``, the chosen backend is counted under
    ``parallel.backend.<name>``, each worker records into its own
    :class:`StatsRecorder`, and the per-shard snapshots merge into
    ``recorder`` in shard order, tagged with their shard index.
    """
    paths = list(paths)
    if backend not in BACKENDS:
        raise UsageError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    if jobs is not None and jobs < 1:
        raise UsageError(f"jobs must be a positive integer, got {jobs}")
    if executor is not None and backend != "auto":
        warnings.warn(
            f"caller-supplied executor takes precedence over "
            f"backend={backend!r}; pass backend='auto' (the default) "
            "when reusing an external pool",
            RuntimeWarning,
            stacklevel=2,
        )
    cpus = os.cpu_count() or 1
    if executor is not None:
        chosen = "external"
        shard_count = jobs if jobs is not None else cpus
    elif backend == "auto":
        chosen, shard_count = choose_backend(len(paths), jobs, cpus)
    elif backend == "serial":
        chosen, shard_count = "serial", 1
    else:
        chosen = backend
        shard_count = jobs if jobs is not None else cpus
        if shard_count <= 1 or len(paths) <= 1:
            chosen, shard_count = "serial", 1
    if recorder.enabled:
        recorder.count(f"parallel.backend.{chosen}")
    if chosen == "serial":
        return extract_from_paths(paths, recorder)
    shards = shard_paths(paths, shard_count)

    def _reduce(results: Iterable[object]) -> StreamingEvidence:
        if not recorder.enabled:
            return merge_evidence(results)
        merged = StreamingEvidence()
        for index, (evidence, snapshot) in enumerate(results):
            if contracts_enabled():
                check_merge_commutative(merged, evidence)
            merged.merge(evidence)
            recorder.merge_snapshot(snapshot, shard=index)
            recorder.count("shards")
        return merged

    # Both dispatch routes preserve input order, so the reduce sees
    # shards in corpus order regardless of completion order.  The warm
    # pools additionally recover from a dead worker (resubmit once,
    # see _pooled_results); a caller-supplied executor is the caller's
    # to heal, so it keeps plain map semantics.
    if executor is not None:
        if recorder.enabled:
            return _reduce(
                executor.map(_extract_shard_recorded, list(enumerate(shards)))
            )
        return _reduce(executor.map(extract_from_paths, shards))
    pool = warm_pool(chosen)
    if recorder.enabled:
        return _reduce(
            _pooled_results(
                pool, _extract_shard_recorded, list(enumerate(shards))
            )
        )
    return _reduce(_pooled_results(pool, extract_from_paths, shards))


def infer_parallel(
    paths: Sequence[str],
    jobs: int | None = None,
    method: Method = "auto",
    backend: Backend = "auto",
    executor: Executor | None = None,
    inferencer: DTDInferencer | None = None,
) -> Dtd:
    """Deprecated: use :func:`repro.api.infer` with
    ``InferenceConfig(streaming=True, jobs=N)``.

    Produces the same DTD as batch inference over the parsed corpus,
    with peak memory bounded by learner-state size and wall-clock
    divided across ``jobs`` workers.
    """
    legacy_entry_point("infer_parallel", "repro.api.infer", stacklevel=3)
    if inferencer is None:
        inferencer = DTDInferencer(method=method)
    evidence = parallel_evidence(
        paths,
        jobs=jobs,
        backend=backend,
        executor=executor,
        recorder=inferencer.recorder,
    )
    return inferencer._finalize_streaming(evidence)
