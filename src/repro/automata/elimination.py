"""Classical state elimination: automaton → regular expression.

This is the textbook algorithm (Hopcroft & Ullman) the paper contrasts
with ``rewrite``: applied to the automaton of Figure 1 it produces the
monstrous expression (†) where an equivalent SORE (‡) has 12 tokens.
Ehrenfeucht & Zeiger showed the blow-up is unavoidable in general —
which is exactly why the paper targets the SORE subclass instead.

We keep it for the conciseness benchmarks (experiment E1) and implement
the elimination-order heuristics studied in the optimisation literature
([16, 27] in the paper): the order in which states are eliminated can
change the output size considerably, but no order avoids the
exponential worst case.

Because the paper's automata label *states* rather than edges, the edge
into the sink consumes no symbol.  We therefore run the elimination
over labels of type ``Regex | None`` where ``None`` plays the role of ε
(``ε . r = r`` and ``ε + r = r?``), avoiding an epsilon node in the
public AST.
"""

from __future__ import annotations

import random
from typing import Literal

from ..errors import CorpusError, UsageError
from ..regex.ast import Opt, Regex, Star, Sym, concat, disj
from .soa import SOA

Order = Literal["natural", "min_degree", "random"]

_SOURCE = -1
_SINK = -2

_Label = Regex | None  # None is ε


def _join(first: _Label, second: _Label) -> _Label:
    if first is None:
        return second
    if second is None:
        return first
    return concat(first, second)


def _union(first: _Label, second: _Label) -> _Label:
    if first is None and second is None:
        return None
    if first is None:
        return second if second.nullable() else Opt(second)
    if second is None:
        return first if first.nullable() else Opt(first)
    return disj(first, second)


def state_elimination(
    soa: SOA,
    order: Order = "natural",
    rng: random.Random | None = None,
) -> Regex:
    """Convert a SOA to an RE by classical state elimination.

    ``order`` picks which state to eliminate next:

    * ``natural`` — sorted symbol order (what a naive implementation does);
    * ``min_degree`` — greedily eliminate the state minimising
      ``in-degree × out-degree`` (the common heuristic from the
      automata-to-RE optimisation literature);
    * ``random`` — a uniformly random order (pass ``rng`` for
      reproducibility).

    The result is language-equivalent to the SOA but generally far
    larger than the SORE found by ``rewrite`` — that contrast is the
    point of experiment E1.
    """
    if soa.accepts_empty:
        raise UsageError(
            "state elimination here targets ε-free SOA languages; "
            "handle accepts_empty at the DTD layer"
        )
    trimmed = soa.trimmed()
    if not trimmed.symbols:
        raise CorpusError("empty language: no accepting path in the SOA")

    ids = {symbol: index for index, symbol in enumerate(sorted(trimmed.symbols))}
    edges: dict[tuple[int, int], _Label] = {}

    def add(tail: int, head: int, label: _Label) -> None:
        edges[(tail, head)] = (
            _union(edges[(tail, head)], label) if (tail, head) in edges else label
        )

    for symbol in trimmed.initial:
        add(_SOURCE, ids[symbol], Sym(symbol))
    for a, b in trimmed.edges:
        add(ids[a], ids[b], Sym(b))
    for symbol in trimmed.final:
        add(ids[symbol], _SINK, None)

    def degree(state: int) -> int:
        incoming = sum(1 for (t, h) in edges if h == state and t != state)
        outgoing = sum(1 for (t, h) in edges if t == state and h != state)
        return incoming * outgoing

    remaining = set(ids.values())
    while remaining:
        if order == "natural":
            state = min(remaining)
        elif order == "min_degree":
            state = min(remaining, key=lambda s: (degree(s), s))
        elif order == "random":
            generator = rng if rng is not None else random
            state = generator.choice(sorted(remaining))
        else:  # pragma: no cover - guarded by the Literal type
            raise UsageError(f"unknown elimination order {order!r}")
        remaining.discard(state)

        loop = edges.pop((state, state), None)
        incoming = [
            (tail, label) for (tail, head), label in edges.items() if head == state
        ]
        outgoing = [
            (head, label) for (tail, head), label in edges.items() if tail == state
        ]
        for tail, _ in incoming:
            del edges[(tail, state)]
        for head, _ in outgoing:
            del edges[(state, head)]
        middle = Star(loop) if loop is not None else None
        for tail, in_label in incoming:
            for head, out_label in outgoing:
                add(tail, head, _join(_join(in_label, middle), out_label))

    final = edges.get((_SOURCE, _SINK))
    if final is None:
        raise CorpusError("the SOA accepts only ε, which no RE can denote")
    return final
