"""Shared fixtures for the checkpoint/resume suite.

Every test here drives :mod:`repro.ckpt` over a small generated
corpus.  The corpus seed honours ``REPRO_TEST_SEED`` so the CI
flakiness guard can replay the module under several different corpora,
and the ambient ``REPRO_FAULTS`` plan the CI resilience job exports is
stripped — checkpointed runs only accept ``kill_after_shards`` plans,
which these tests inject explicitly where they want them.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.xmlio.dtd import parse_dtd

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

DTD_SOURCE = (
    "<!ELEMENT r (item+)><!ELEMENT item (name, price?, tag*)>"
    "<!ELEMENT name (#PCDATA)><!ELEMENT price (#PCDATA)>"
    "<!ELEMENT tag EMPTY>"
)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


def write_corpus(directory, count, seed=None, dtd=DTD_SOURCE, prefix="doc"):
    """Generate ``count`` documents under ``directory``; returns paths."""
    generator = XmlGenerator(
        parse_dtd(dtd), random.Random(SEED + 11 if seed is None else seed)
    )
    paths = []
    for index, document in enumerate(generator.corpus(count)):
        path = directory / f"{prefix}{index:03d}.xml"
        path.write_text(serialize(document), encoding="utf-8")
        paths.append(str(path))
    return paths
