"""The checkpointed extraction loop: plan, reuse, dispatch, commit.

:func:`checkpointed_evidence` is a drop-in sibling of
:func:`repro.runtime.parallel.parallel_evidence` that persists progress
to a run directory and harvests previous progress from it.

The plan
--------

1. Hash every corpus document (path + content sha256).
2. Load the previous manifest, if resuming.  Walk its shards in order
   and greedily match each one's exact document-hash sequence as a
   contiguous run in the *new* corpus, never moving backwards.  A
   matched shard's cached state is loaded and verified; anything else —
   unmatched, corrupt, truncated — is dropped and its documents fall
   through to fresh parsing.
3. The positions no reused shard covers form contiguous *fresh
   segments*.  They are sharded with the same cost model as a plain
   parallel run and dispatched on the same warm pools.
4. As each fresh shard's evidence lands (in corpus order), it is
   committed durably: state bytes first (write-tmp + fsync + rename),
   then the manifest naming them.  A kill at any instant leaves a
   manifest whose every entry points at a complete state file.
5. All plan entries — reused and fresh — merge in corpus position
   order, which is exactly the order a serial pass would fold
   documents, so the result is byte-identical to an uninterrupted,
   uncached run (reservoir truncation included).

Matching on content hashes (not paths) means renames cost nothing, and
a changed document invalidates only the shard that contained it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from contextlib import suppress
from collections.abc import Sequence

from ..contracts import (
    check_checkpoint_resume,
    check_checkpoint_roundtrip,
    check_merge_commutative,
    contracts_enabled,
)
from ..errors import UsageError
from ..learning.evidence import SAMPLE_CAP, StreamingEvidence
from ..obs.recorder import NULL_RECORDER, Recorder, Snapshot, StatsRecorder
from ..runtime.parallel import (
    BACKENDS,
    Backend,
    choose_backend,
    run_shard_tasks,
    shard_paths,
)
from ..runtime.resilience import CRASH_EXIT_STATUS, FaultPlan
from .codec import StateDecodeError, file_sha256, read_state, write_state
from .lock import RunLock
from .manifest import (
    SHARD_DIR,
    DocumentEntry,
    Manifest,
    ShardEntry,
    load_manifest,
)


@dataclass
class _PlanEntry:
    """One contiguous slice of the new corpus and where its state comes from."""

    start: int  # corpus position of the first document
    documents: tuple[DocumentEntry, ...]
    evidence: StreamingEvidence | None  # pre-loaded for reused shards
    shard_entry: ShardEntry | None  # manifest entry for reused shards
    fresh_index: int | None  # dispatch index for fresh shards


def _find_run(
    hashes: Sequence[str], needle: Sequence[str], start: int
) -> int | None:
    """First position >= ``start`` where ``needle`` occurs contiguously."""
    length = len(needle)
    if length == 0:
        return None
    limit = len(hashes) - length
    position = start
    while position <= limit:
        if hashes[position : position + length] == list(needle):
            return position
        position += 1
    return None


def _reusable_shards(
    run_dir: str,
    old: Manifest | None,
    entries: Sequence[DocumentEntry],
    recorder: Recorder,
) -> list[_PlanEntry]:
    """Match old shards against the new corpus, loading cached states.

    Greedy and forward-only: old shards committed in corpus order, so
    scanning each against a monotonically advancing position matches
    every survivable prefix/infix without quadratic rescans.
    """
    if old is None:
        return []
    if old.sample_cap != SAMPLE_CAP:
        # Reservoir truncation depends on the cap; states written under
        # a different build constant cannot reproduce today's bytes.
        recorder.count("ckpt.corrupt", len(old.shards))
        return []
    hashes = [entry.sha256 for entry in entries]
    reused: list[_PlanEntry] = []
    position = 0
    for shard in old.shards:
        needle = [document.sha256 for document in shard.documents]
        found = _find_run(hashes, needle, position)
        if found is None:
            continue
        state_path = os.path.join(run_dir, SHARD_DIR, shard.state_file)
        try:
            evidence = read_state(state_path)
        except StateDecodeError:
            recorder.count("ckpt.corrupt")
            continue
        recorder.count("ckpt.load")
        recorder.count("ckpt.hit")
        recorder.count("ckpt.skip", len(shard.documents))
        reused.append(
            _PlanEntry(
                start=found,
                documents=tuple(entries[found : found + len(needle)]),
                evidence=evidence,
                shard_entry=shard,
                fresh_index=None,
            )
        )
        position = found + len(needle)
    return reused


def _fresh_segments(
    entries: Sequence[DocumentEntry], reused: Sequence[_PlanEntry]
) -> list[tuple[int, list[DocumentEntry]]]:
    """The contiguous corpus runs no reused shard covers."""
    covered = [False] * len(entries)
    for plan in reused:
        for offset in range(len(plan.documents)):
            covered[plan.start + offset] = True
    segments: list[tuple[int, list[DocumentEntry]]] = []
    index = 0
    while index < len(entries):
        if covered[index]:
            index += 1
            continue
        start = index
        while index < len(entries) and not covered[index]:
            index += 1
        segments.append((start, list(entries[start:index])))
    return segments


def _resolve_backend(
    fresh_documents: int, jobs: int | None, backend: Backend
) -> tuple[Backend, int]:
    """Backend selection for the fresh part only (cached shards are free)."""
    if backend not in BACKENDS:
        raise UsageError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}"
        )
    if jobs is not None and jobs < 1:
        raise UsageError(f"jobs must be a positive integer, got {jobs}")
    cpus = os.cpu_count() or 1
    if backend == "auto":
        return choose_backend(fresh_documents, jobs, cpus)
    if backend == "serial":
        return "serial", 1
    shard_count = jobs if jobs is not None else cpus
    if shard_count <= 1 or fresh_documents <= 1:
        return "serial", 1
    return backend, shard_count


def _collect_garbage(run_dir: str, manifest: Manifest, recorder: Recorder) -> None:
    """Unlink state files the final manifest no longer references."""
    shard_dir = os.path.join(run_dir, SHARD_DIR)
    referenced = manifest.referenced_state_files()
    try:
        present = os.listdir(shard_dir)
    except OSError:
        return
    for name in present:
        if name.endswith(".state") and name not in referenced:
            with suppress(OSError):
                os.unlink(os.path.join(shard_dir, name))
                recorder.count("ckpt.gc")


def checkpointed_evidence(
    paths: Sequence[str],
    *,
    state_dir: str | os.PathLike[str],
    resume: bool = False,
    jobs: int | None = None,
    backend: Backend = "auto",
    recorder: Recorder = NULL_RECORDER,
    fault_plan: FaultPlan | None = None,
) -> StreamingEvidence:
    """Extract streaming evidence with durable per-shard checkpoints.

    ``resume=False`` demands a pristine directory: finding a manifest
    raises :class:`~repro.errors.UsageError` rather than silently
    clobbering a previous run.  ``resume=True`` reuses every shard of
    the old manifest whose exact document-hash run still occurs in the
    new corpus — which covers both crash recovery (the committed
    prefix matches trivially) and incremental re-runs over edited
    corpora.  Either way the returned evidence is byte-identical to a
    fresh, uncached run over ``paths``.

    ``fault_plan.kill_after_shards`` hard-kills the process (exit
    status ``CRASH_EXIT_STATUS``) immediately after the named fresh
    shard commits — the hook the crash/resume property tests use.
    """
    run_dir = os.fspath(state_dir)
    os.makedirs(os.path.join(run_dir, SHARD_DIR), exist_ok=True)
    with RunLock(run_dir):
        old = load_manifest(run_dir)
        if old is not None and not resume:
            raise UsageError(
                f"state dir {run_dir} already holds a checkpointed run; "
                "pass resume=True (--resume) to continue it, or point "
                "state_dir at a fresh directory"
            )
        entries = [
            DocumentEntry(path=os.fspath(path), sha256=file_sha256(path))
            for path in paths
        ]
        reused = _reusable_shards(run_dir, old if resume else None, entries, recorder)
        segments = _fresh_segments(entries, reused)
        fresh_total = sum(len(documents) for _start, documents in segments)
        chosen, shard_count = _resolve_backend(fresh_total, jobs, backend)
        if recorder.enabled:
            recorder.count(f"parallel.backend.{chosen}")

        # Shard each fresh segment proportionally to its share of the
        # fresh work (ceil, so no segment gets zero shards).
        plan: list[_PlanEntry] = list(reused)
        fresh_shards: list[list[str]] = []
        fresh_documents: list[tuple[DocumentEntry, ...]] = []
        for start, documents in segments:
            share = max(
                1, (len(documents) * shard_count + fresh_total - 1) // fresh_total
            )
            offset = start
            for chunk in shard_paths(
                [document.path for document in documents], share
            ):
                slice_ = tuple(entries[offset : offset + len(chunk)])
                plan.append(
                    _PlanEntry(
                        start=offset,
                        documents=slice_,
                        evidence=None,
                        shard_entry=None,
                        fresh_index=len(fresh_shards),
                    )
                )
                fresh_shards.append(list(chunk))
                fresh_documents.append(slice_)
                offset += len(chunk)
        plan.sort(key=lambda entry: entry.start)

        manifest = Manifest(sample_cap=SAMPLE_CAP)
        committed: dict[int, ShardEntry] = {}

        def _store_progress() -> None:
            """Rewrite the manifest from every durable entry, corpus order."""
            durable: list[tuple[int, ShardEntry]] = []
            for entry in plan:
                if entry.shard_entry is not None:
                    durable.append((entry.start, entry.shard_entry))
                elif (
                    entry.fresh_index is not None
                    and entry.fresh_index in committed
                ):
                    durable.append((entry.start, committed[entry.fresh_index]))
            manifest.shards = [shard for _start, shard in sorted(
                durable, key=lambda pair: pair[0]
            )]
            manifest.store(run_dir)

        fresh_evidence: dict[int, StreamingEvidence] = {}

        def _commit(
            index: int, evidence: StreamingEvidence, snapshot: Snapshot | None
        ) -> None:
            if contracts_enabled():
                check_checkpoint_roundtrip(evidence)
            digest = write_state(
                os.path.join(run_dir, SHARD_DIR, "pending.state"), evidence
            )
            name = f"{digest[:16]}.state"
            os.replace(
                os.path.join(run_dir, SHARD_DIR, "pending.state"),
                os.path.join(run_dir, SHARD_DIR, name),
            )
            recorder.count("ckpt.write")
            committed[index] = ShardEntry(
                documents=fresh_documents[index],
                state_file=name,
                digest=digest,
            )
            fresh_evidence[index] = evidence
            if snapshot is not None and isinstance(recorder, StatsRecorder):
                recorder.merge_snapshot(snapshot, shard=index)
            _store_progress()
            if fault_plan is not None and fault_plan.kills_after(index):
                os._exit(CRASH_EXIT_STATUS)

        if fresh_shards:
            run_shard_tasks(chosen, fresh_shards, recorder, on_result=_commit)

        merged = StreamingEvidence()
        for entry in plan:
            part = (
                entry.evidence
                if entry.evidence is not None
                else fresh_evidence[entry.fresh_index]  # type: ignore[index]
            )
            if contracts_enabled():
                check_merge_commutative(merged, part)
            merged.merge(part)
        if recorder.enabled:
            recorder.count("shards", len(plan))

        manifest.complete = True
        _store_progress()
        _collect_garbage(run_dir, manifest, recorder)

        if contracts_enabled():
            check_checkpoint_roundtrip(merged)
            if reused:
                check_checkpoint_resume(merged, [entry.path for entry in entries])
        return merged
