"""Normal forms for regular expressions.

The completeness proof of ``rewrite`` (Claim 1 in Section 5) works with
*normalized* SOREs: the transformations ``(s+)+ → s+``, ``s?? → s?``
and ``(s?)+ → (s+)?`` are applied until no superfluous operators
remain.  The rewrite system itself never emits a Kleene star; it
represents ``r*`` as ``(r+)?``, and a post-processing step contracts
that back to ``r*`` for display.

This module provides both directions plus a canonical form used for
"syntactically equal up to commutativity of +" comparisons (the success
criterion of the Figure 4 experiments, Theorem 5).
"""

from __future__ import annotations

from .ast import (
    Concat,
    Disj,
    Inter,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    concat,
    disj,
    inter,
)
from .printer import to_paper_syntax


def _rebuild(regex: Regex, children: list[Regex]) -> Regex:
    if isinstance(regex, Concat):
        return concat(*children)
    if isinstance(regex, Disj):
        return disj(*children)
    if isinstance(regex, Inter):
        return inter(*children)
    if isinstance(regex, Opt):
        return Opt(children[0])
    if isinstance(regex, Plus):
        return Plus(children[0])
    if isinstance(regex, Star):
        return Star(children[0])
    if isinstance(regex, Repeat):
        return Repeat(children[0], regex.low, regex.high)
    return regex


def expand_stars(regex: Regex) -> Regex:
    """Replace every ``r*`` by ``(r+)?`` (the rewrite-internal form)."""
    if isinstance(regex, Sym):
        return regex
    children = [expand_stars(child) for child in regex.children()]
    if isinstance(regex, Star):
        return Opt(Plus(children[0]))
    return _rebuild(regex, children)


def contract_stars(regex: Regex) -> Regex:
    """Replace ``(r+)?`` and ``(r?)+`` by ``r*`` (Section 5 post-processing)."""
    if isinstance(regex, Sym):
        return regex
    children = [contract_stars(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    if isinstance(rebuilt, Opt) and isinstance(rebuilt.inner, Plus):
        return Star(rebuilt.inner.inner)
    if isinstance(rebuilt, Plus) and isinstance(rebuilt.inner, Opt):
        return Star(rebuilt.inner.inner)
    return rebuilt


def _factor_interval(factor: Regex) -> tuple[str, int, int | None] | None:
    """Recognize a single-symbol factor denoting ``{a^i : low <= i <= high}``.

    Returns ``(symbol, low, high)`` (``high is None`` meaning unbounded)
    or ``None`` when the factor is not of that shape.  Every quantifier
    the learners emit over a lone symbol is such a contiguous interval.
    """
    if isinstance(factor, Sym):
        return factor.name, 1, 1
    if isinstance(factor, (Opt, Plus, Star, Repeat)):
        inner = _factor_interval(factor.inner)
        if inner is None:
            return None
        name, low, high = inner
        if isinstance(factor, Opt):
            # {0} ∪ [low, high] is contiguous only when low <= 1.
            return (name, 0, high) if low <= 1 else None
        if isinstance(factor, (Plus, Star)):
            # Sums of k >= 1 copies of [low, high] tile [low, ∞) only
            # when consecutive multiples overlap: 2·low <= high + 1.
            if high is not None and 2 * low > high + 1:
                return None
            if isinstance(factor, Star) and low > 1:
                return None
            return name, 0 if isinstance(factor, Star) else low, None
        # Repeat: exact only over a plain symbol (inner interval {1}).
        if (low, high) != (1, 1):
            return None
        return name, factor.low, factor.high
    return None


def _interval_regex(name: str, low: int, high: int | None) -> Regex:
    base = Sym(name)
    if (low, high) == (1, 1):
        return base
    if (low, high) == (0, 1):
        return Opt(base)
    if low <= 1 and high is None:
        return Plus(base) if low == 1 else Star(base)
    return Repeat(base, low, high)


def contract_repeats(regex: Regex) -> Regex:
    """Collapse runs of same-symbol factors into bounded repetitions.

    The k-ORE learner produces concatenations like ``a a? a?`` (one
    factor per marked occurrence); adjacent factors over the same lone
    symbol whose count sets are contiguous intervals concatenate to the
    sumset interval, so ``a a? a?`` contracts to ``a{1,3}`` exactly.
    Runs of length one are left untouched.
    """
    if isinstance(regex, Sym):
        return regex
    children = [contract_repeats(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    if not isinstance(rebuilt, Concat):
        return rebuilt
    out: list[Regex] = []
    run: tuple[str, int, int | None] | None = None
    run_parts: list[Regex] = []

    def flush() -> None:
        nonlocal run
        if run is not None:
            if len(run_parts) == 1:
                out.append(run_parts[0])
            else:
                out.append(_interval_regex(*run))
        run = None
        run_parts.clear()

    for part in rebuilt.parts:
        interval = _factor_interval(part)
        if interval is None:
            flush()
            out.append(part)
            continue
        if run is not None and run[0] == interval[0]:
            low = run[1] + interval[1]
            high = (
                None
                if run[2] is None or interval[2] is None
                else run[2] + interval[2]
            )
            run = (interval[0], low, high)
            run_parts.append(part)
        else:
            flush()
            run = interval
            run_parts.append(part)
    flush()
    return concat(*out)


def normalize(regex: Regex) -> Regex:
    """Remove superfluous unary operators, keeping stars contracted.

    Rules applied to a fixpoint, bottom-up::

        r??     -> r?        (r+)+   -> r+       (r*)*  -> r*
        (r?)+   -> r*        (r+)?   -> r*       (r*)?  -> r*
        (r?)*   -> r*        (r+)*   -> r*       (r*)+  -> r*

    The result is language-equivalent and unique for the unary-operator
    layer: at most one of ``?``/``+``/``*`` wraps any subexpression.
    """
    if isinstance(regex, Sym):
        return regex
    children = [normalize(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    if isinstance(rebuilt, Opt):
        inner = rebuilt.inner
        if isinstance(inner, Opt):
            return inner
        if isinstance(inner, (Star,)):
            return inner
        if isinstance(inner, Plus):
            return Star(inner.inner)
        return rebuilt
    if isinstance(rebuilt, Plus):
        inner = rebuilt.inner
        if isinstance(inner, Plus):
            return inner
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Opt):
            return Star(inner.inner)
        return rebuilt
    if isinstance(rebuilt, Star):
        inner = rebuilt.inner
        if isinstance(inner, (Opt, Plus, Star)):
            return Star(normalize(inner.inner))
        return rebuilt
    return rebuilt


def _simplify_once(regex: Regex) -> Regex:
    if isinstance(regex, Sym):
        return regex
    children = [_simplify_once(child) for child in regex.children()]
    rebuilt = _rebuild(regex, children)
    # (x? + y)  ->  (x + y)?   — pull optionality out of a disjunction
    # so the parent operator can absorb it.
    if isinstance(rebuilt, Disj) and any(
        isinstance(option, Opt) for option in rebuilt.options
    ):
        stripped = [
            option.inner if isinstance(option, Opt) else option
            for option in rebuilt.options
        ]
        return Opt(disj(*stripped))
    # (x+ + y)+ -> (x + y)+  and  (x* + y)+ -> (x + y)*: under an outer
    # + or *, per-option repetition adds nothing.
    if isinstance(rebuilt, (Plus, Star)) and isinstance(rebuilt.inner, Disj):
        options = rebuilt.inner.options
        if any(isinstance(option, (Plus, Star)) for option in options):
            stripped = [
                option.inner if isinstance(option, (Plus, Star)) else option
                for option in options
            ]
            saw_star = any(isinstance(option, Star) for option in options)
            core = disj(*stripped)
            if isinstance(rebuilt, Star) or saw_star:
                return Star(core)
            return Plus(core)
    return rebuilt


def simplify(regex: Regex) -> Regex:
    """Language-preserving conciseness cleanup, to a fixpoint.

    Combines :func:`normalize` with two disjunction laws::

        (x? + y)   =  (x + y)?
        (x+ + y)+  =  (x + y)+        (x* + y)+  =  (x + y)*

    These patterns arise when the rewrite rules merge a plus-like state
    with plain states; the paper's reported expressions never contain
    them, so iDTD applies this cleanup to its final output.
    """
    current = normalize(regex)
    while True:
        simplified = normalize(_simplify_once(current))
        if simplified == current:
            return current
        current = simplified


def canonical(regex: Regex) -> Regex:
    """A canonical representative up to commutativity of ``+``.

    Normalizes unary operators and sorts the options of every
    disjunction by their rendered text.  Two expressions are
    "syntactically equal up to commutativity of +" (Theorem 5) iff
    their canonical forms are structurally equal.
    """
    regex = normalize(regex)

    def sort_disjunctions(node: Regex) -> Regex:
        if isinstance(node, Sym):
            return node
        children = [sort_disjunctions(child) for child in node.children()]
        rebuilt = _rebuild(node, children)
        if isinstance(rebuilt, Disj):
            ordered = sorted(rebuilt.options, key=to_paper_syntax)
            return disj(*ordered)
        if isinstance(rebuilt, Inter):
            # Shuffle is commutative too; sort branches the same way.
            ordered = sorted(rebuilt.branches, key=to_paper_syntax)
            return inter(*ordered)
        return rebuilt

    return sort_disjunctions(regex)


def syntactically_equal(first: Regex, second: Regex) -> bool:
    """Equality up to commutativity of ``+`` and operator normal form."""
    return canonical(first) == canonical(second)
