"""Experiment E5 — Section 8.3: time performance.

The paper: example4 (61 symbols) from 10 000 strings takes iDTD 7 s and
crx 3.2 s on 2006 hardware; typical ~10-symbol expressions from a few
hundred strings take about a second; Trang is slightly faster than crx;
xtract cannot handle more than 1000 strings.  The shape we verify:

* both learners handle the large corpus, crx faster than iDTD;
* cost scales roughly linearly in the corpus for crx;
* xtract's cost explodes (guarded by its capacity error).
"""

import pytest

from repro.baselines.trang import trang
from repro.baselines.xtract import XtractCapacityError, xtract
from repro.core.crx import crx
from repro.core.idtd import idtd
from repro.datagen.corpora import table1_row, table2_row
from repro.datagen.strings import padded_sample
from repro.evaluation.tables import Table
from repro.evaluation.timing import timed


@pytest.fixture(scope="module")
def example4_corpus(scale):
    import random

    rng = random.Random(61)
    row = table2_row("example4")
    return padded_sample(row.generator(), scale.performance_strings, rng)


def test_crx_on_large_corpus(example4_corpus, benchmark):
    """Paper: 3.2 s for 10 000 strings / 61 symbols (2006 hardware)."""
    result = benchmark(lambda: crx(example4_corpus))
    assert result.alphabet() >= {"a2", "a5", "a61"}


def test_idtd_on_large_corpus(example4_corpus, benchmark):
    """Paper: 7 s for the same corpus — slower than crx."""
    result = benchmark(lambda: idtd(example4_corpus))
    assert result.alphabet() >= {"a2", "a5", "a61"}


def test_trang_on_large_corpus(example4_corpus, benchmark):
    benchmark(lambda: trang(example4_corpus))


def test_typical_element(rng, benchmark):
    """Paper: ~10 symbols, a few hundred strings, 'approximately a second'."""
    row = table1_row("ProteinEntry")
    sample = padded_sample(row.generator(), 300, rng)
    benchmark(lambda: idtd(sample))


def test_relative_speed_summary(example4_corpus, rng, scale, benchmark):
    table = Table(
        headers=("system", "seconds", "note"),
        title=f"E5: wall-clock on example4 x {len(example4_corpus)} strings "
        "(paper, 2006: crx 3.2s, iDTD 7s, Trang < crx, xtract DNF)",
    )
    crx_time = timed(lambda: crx(example4_corpus)).seconds
    idtd_time = timed(lambda: idtd(example4_corpus)).seconds
    trang_time = timed(lambda: trang(example4_corpus)).seconds
    table.add("crx", f"{crx_time:.3f}", "")
    table.add("iDTD", f"{idtd_time:.3f}", "")
    table.add("trang", f"{trang_time:.3f}", "")
    try:
        xtract(example4_corpus)
        table.add("xtract", "-", "unexpectedly succeeded")
    except XtractCapacityError as error:
        table.add("xtract", "DNF", str(error)[:60])
    table.show()
    benchmark(lambda: crx(example4_corpus[:500]))
    # the paper's ordering: iDTD is the slowest of the three learners
    assert idtd_time >= crx_time or idtd_time >= trang_time


def test_crx_scales_linearly(rng, scale, benchmark):
    """Streaming CRX: doubling the corpus ~doubles the cost."""
    row = table2_row("example4")
    small = padded_sample(row.generator(), 500, rng)
    large = padded_sample(row.generator(), 2000, rng)
    small_time = min(timed(lambda: crx(small)).seconds for _ in range(3))
    large_time = min(timed(lambda: crx(large)).seconds for _ in range(3))
    table = Table(headers=("strings", "seconds"), title="E5b: crx scaling")
    table.add(len(small), f"{small_time:.4f}")
    table.add(len(large), f"{large_time:.4f}")
    table.show()
    benchmark(lambda: crx(small))
    # 4x data should cost well under 16x (i.e. clearly sub-quadratic)
    assert large_time <= max(16 * small_time, small_time + 0.5)
