"""Tests for the debug-mode invariant contracts (:mod:`repro.contracts`).

Two halves: the *positive* direction (the live pipeline satisfies every
contract with checks enabled — a tier-1 slice runs under
``contracts_active()``), and the *mutation* direction (corrupted
structures are rejected, proving the checks actually look at what they
claim to look at).
"""

from __future__ import annotations

import pytest

from repro.api import InferenceConfig, infer
from repro.automata.gfa import GFA, SINK, SOURCE
from repro.automata.soa import SOA
from repro.contracts import (
    ContractViolation,
    check_content_model,
    check_emitted_chare,
    check_emitted_sore,
    check_gfa,
    check_merge_commutative,
    check_soa,
    contracts_active,
    contracts_enabled,
    set_contracts,
)
from repro.core.crx import crx
from repro.core.idtd import idtd
from repro.regex.ast import Opt, Plus, Star, Sym, concat, disj
from repro.regex.parser import parse_regex
from repro.xmlio.extract import StreamingEvidence
from repro.xmlio.parser import parse_document

DOCS = [
    "<r><a/><a/><b/></r>",
    "<r><a/><c/></r>",
    "<r><b/></r>",
]


def streaming_evidence(texts):
    evidence = StreamingEvidence()
    for text in texts:
        evidence.add_document(parse_document(text))
    return evidence


@pytest.fixture(autouse=True)
def _known_toggle_state():
    """Start each test from the disabled state and restore afterwards,
    so the suite behaves identically under ``REPRO_CHECKS=1`` (where
    the module-level default is *enabled*)."""
    previous = contracts_enabled()
    set_contracts(False)
    yield
    set_contracts(previous)


class TestToggles:
    def test_default_follows_environment(self, monkeypatch):
        from repro.contracts import _env_enabled

        monkeypatch.delenv("REPRO_CHECKS", raising=False)
        assert not _env_enabled()
        monkeypatch.setenv("REPRO_CHECKS", "0")
        assert not _env_enabled()
        monkeypatch.setenv("REPRO_CHECKS", "1")
        assert _env_enabled()

    def test_set_contracts_round_trip(self):
        set_contracts(True)
        try:
            assert contracts_enabled()
        finally:
            set_contracts(False)
        assert not contracts_enabled()

    def test_contracts_active_restores(self):
        with contracts_active():
            assert contracts_enabled()
        assert not contracts_enabled()

    def test_contracts_active_restores_on_error(self):
        with pytest.raises(RuntimeError):  # noqa: SIM117
            with contracts_active():
                raise RuntimeError("boom")
        assert not contracts_enabled()


class TestPipelineSatisfiesContracts:
    """A tier-1 slice of real inference runs clean with checks on."""

    def test_batch_inference(self):
        with contracts_active():
            result = infer(DOCS)
        assert "r" in result.dtd.elements

    def test_streaming_inference(self):
        with contracts_active():
            result = infer(DOCS, config=InferenceConfig(streaming=True))
        assert "r" in result.dtd.elements

    def test_both_learners(self):
        words = [("a", "b"), ("b", "a"), ("a",)]
        with contracts_active():
            idtd(words)
            crx(words)

    def test_merge_passes_on_real_evidence(self):
        left = streaming_evidence(DOCS[:2])
        right = streaming_evidence(DOCS[2:])
        check_merge_commutative(left, right)


class TestSoaMutations:
    def test_well_formed_soa_passes(self):
        soa = SOA(
            symbols={"a", "b"},
            initial={"a"},
            final={"b"},
            edges={("a", "b")},
        )
        check_soa(soa)

    def test_ghost_edge_symbol_rejected(self):
        soa = SOA(
            symbols={"a", "b"},
            initial={"a"},
            final={"b"},
            edges={("a", "b")},
        )
        soa.edges.add(("b", "ghost"))
        with pytest.raises(ContractViolation, match="soa-well-formed"):
            check_soa(soa)

    def test_ghost_initial_symbol_rejected(self):
        soa = SOA(symbols={"a"}, initial={"a"}, final={"a"}, edges=set())
        soa.initial.add("ghost")
        with pytest.raises(ContractViolation, match="soa-well-formed"):
            check_soa(soa)


class TestGfaMutations:
    @staticmethod
    def make_gfa():
        gfa = GFA()
        node = gfa.add_node(Sym("a"))
        gfa.add_edge(SOURCE, node)
        gfa.add_edge(node, SINK)
        return gfa, node

    def test_well_formed_gfa_passes(self):
        gfa, _ = self.make_gfa()
        check_gfa(gfa)

    def test_broken_adjacency_mirror_rejected(self):
        gfa, node = self.make_gfa()
        gfa._out[node].add(node)  # bypass add_edge: _in not updated
        with pytest.raises(ContractViolation, match="gfa-adjacency"):
            check_gfa(gfa)

    def test_edge_into_source_rejected(self):
        gfa, node = self.make_gfa()
        gfa._out[node].add(SOURCE)
        gfa._in[SOURCE].add(node)
        with pytest.raises(ContractViolation, match="gfa-endpoints"):
            check_gfa(gfa)

    def test_duplicate_symbol_rejected(self):
        gfa, node = self.make_gfa()
        other = gfa.add_node(Sym("a"))
        gfa.add_edge(SOURCE, other)
        gfa.add_edge(other, SINK)
        with pytest.raises(ContractViolation, match="single-occurrence"):
            check_gfa(gfa)

    def test_star_label_rejected_mid_rewrite(self):
        gfa, node = self.make_gfa()
        gfa.relabel(node, Star(Sym("a")))
        with pytest.raises(ContractViolation, match="star-free"):
            check_gfa(gfa)


class TestEmittedExpressionMutations:
    def test_sore_in_normal_form_passes(self):
        check_emitted_sore(parse_regex("(a+ b)?"))

    def test_non_sore_rejected(self):
        duplicated = concat(Sym("a"), Sym("b"), Sym("a"))
        with pytest.raises(ContractViolation, match="emitted-sore"):
            check_emitted_sore(duplicated)

    def test_non_normal_form_rejected(self):
        with pytest.raises(ContractViolation, match="normal-form"):
            check_emitted_sore(Opt(Opt(Sym("a"))))

    def test_chare_passes(self):
        check_emitted_chare(concat(Plus(disj(Sym("a"), Sym("b"))), Sym("c")))

    def test_non_chare_rejected(self):
        nested = Plus(concat(Sym("a"), Sym("b")))
        with pytest.raises(ContractViolation, match="emitted-chare"):
            check_emitted_chare(nested)

    def test_nondeterministic_content_model_rejected(self):
        ambiguous = disj(concat(Sym("a"), Sym("b")), Sym("a"))
        with pytest.raises(ContractViolation, match="deterministic"):
            check_content_model(ambiguous, "r")

    def test_deterministic_content_model_passes(self):
        check_content_model(parse_regex("(a + b)+ c?"), "r")


class TestMergeMutations:
    def test_corrupted_merge_rejected(self, monkeypatch):
        left = streaming_evidence(DOCS[:2])
        right = streaming_evidence(DOCS[2:])

        original = StreamingEvidence.merge

        def biased_merge(self, other):
            bigger_first = self.document_count > other.document_count
            original(self, other)
            # Corrupt the fold asymmetrically (only when the left
            # operand was the bigger shard), so the two merge orders
            # genuinely disagree.
            if bigger_first:
                for element in self.elements.values():
                    if element.crx.state.arrows:
                        element.crx.state.arrows.pop()
                        break

        monkeypatch.setattr(StreamingEvidence, "merge", biased_merge)
        with pytest.raises(ContractViolation, match="commutativity"):
            check_merge_commutative(left, right)

    def test_inputs_left_untouched(self):
        left = streaming_evidence(DOCS[:2])
        right = streaming_evidence(DOCS[2:])
        before = (left.document_count, right.document_count)
        check_merge_commutative(left, right)
        assert (left.document_count, right.document_count) == before


class TestWiring:
    """The pipeline call sites really consult the toggle."""

    def test_rewrite_checks_fire_on_corrupt_emission(self, monkeypatch):
        import importlib

        # repro.core re-exports a `rewrite` *function*, shadowing the
        # submodule attribute; go through importlib for the module.
        rewrite_module = importlib.import_module("repro.core.rewrite")

        # Force the final normalization to emit a non-normal-form
        # expression; with contracts on the wired check must trip.
        monkeypatch.setattr(
            rewrite_module,
            "contract_stars",
            lambda regex: Opt(Opt(Sym("a"))),
        )
        with contracts_active(), pytest.raises(ContractViolation):
            idtd([("a",), ("a", "a")])

    def test_same_corruption_passes_silently_when_disabled(self, monkeypatch):
        import importlib

        rewrite_module = importlib.import_module("repro.core.rewrite")
        monkeypatch.setattr(
            rewrite_module,
            "contract_stars",
            lambda regex: Opt(Opt(Sym("a"))),
        )
        assert not contracts_enabled()
        idtd([("a",), ("a", "a")])
