"""Stress tests: adversarial inputs that must never crash or hang.

The paper notes that for fixed k and n there exist SOAs where the
restricted iDTD fails, while "the unrestricted variant always
succeeds" — our escalation ladder implements that variant, and these
tests hammer it with dense random automata far uglier than any real
corpus produces.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.compare import soa_included_in_regex
from repro.automata.soa import SOA
from repro.core.crx import crx
from repro.core.idtd import idtd_from_soa
from repro.learning.tinf import tinf
from repro.regex.classify import is_chare, is_sore

STRESS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_dense_soa(rng: random.Random, symbols: int, density: float) -> SOA:
    names = [f"s{i}" for i in range(symbols)]
    edges = {
        (a, b)
        for a in names
        for b in names
        if rng.random() < density
    }
    initial = {name for name in names if rng.random() < 0.4} or {names[0]}
    final = {name for name in names if rng.random() < 0.4} or {names[-1]}
    return SOA(
        symbols=set(names), initial=initial, final=final, edges=edges
    ).trimmed()


@STRESS
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=2, max_value=12),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_unrestricted_idtd_always_succeeds(seed, symbols, density):
    """Theorem 2 under duress: dense random SOAs of up to 12 symbols."""
    soa = random_dense_soa(random.Random(seed), symbols, density)
    if not soa.symbols:
        return
    result = idtd_from_soa(soa)
    assert is_sore(result.regex)
    assert soa_included_in_regex(soa, result.regex)


@STRESS
@given(st.integers(min_value=0, max_value=2**31))
def test_long_words_and_large_alphabets(seed):
    rng = random.Random(seed)
    alphabet = [f"e{i}" for i in range(rng.randint(8, 25))]
    words = [
        tuple(rng.choice(alphabet) for _ in range(rng.randint(0, 40)))
        for _ in range(rng.randint(1, 30))
    ]
    if not any(words):
        return
    sore = idtd_from_soa(tinf(words)).regex
    chare = crx(words)
    assert is_sore(sore)
    assert is_chare(chare)


def test_single_state_with_all_flags():
    """Degenerate single-symbol SOAs in every configuration."""
    for has_loop in (False, True):
        for empty in (False, True):
            soa = SOA(
                symbols={"a"},
                initial={"a"},
                final={"a"},
                edges={("a", "a")} if has_loop else set(),
                accepts_empty=empty,
            )
            result = idtd_from_soa(soa)
            assert soa_included_in_regex(soa, result.regex)


def test_pathological_chain_of_optionals():
    """A 20-long chain of skippable elements (the genetics shape, bigger)."""
    names = [f"o{i}" for i in range(20)]
    # words: full chain, and each single element (everything optional)
    words = [tuple(names)] + [(name,) for name in names] + [()]
    sore = idtd_from_soa(tinf(words)).regex
    assert is_sore(sore)
    from repro.regex.language import matches

    for word in words:
        assert matches(sore, word)


def test_complete_graph_collapses_to_star():
    """The all-edges SOA is exactly (a1+...+an)* — both learners get it."""
    names = [f"x{i}" for i in range(6)]
    words = [tuple(names), *[(a, b) for a in names for b in names], ()]
    from repro.regex.language import language_equivalent
    from repro.regex.parser import parse_regex

    target = parse_regex("(" + " + ".join(sorted(names)) + ")*")
    assert language_equivalent(idtd_from_soa(tinf(words)).regex, target)
    assert language_equivalent(crx(words), target)
