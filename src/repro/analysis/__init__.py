"""Repo-specific static analysis for the repro codebase.

A small AST linter enforcing conventions that generic tools cannot
know about, runnable as ``python -m repro.analysis src/repro`` and as
a CI step.  The rules:

* **R001** — no internal use of the deprecated legacy entry points
  (``infer_dtd``, ``infer_parallel``, ``DTDInferencer.infer_from_*``);
  inside ``src`` everything goes through :func:`repro.api.infer`.
* **R002** — every ``raise`` uses the :mod:`repro.errors` hierarchy
  (or an in-module subclass of it); raising bare builtin exceptions
  loses the CLI exit-code mapping.
* **R003** — no bare ``except:`` / ``except Exception:`` that swallows
  without re-raising or bumping a recorder counter; inside
  ``repro/runtime/`` the same goes for swallowed ``KeyError`` /
  ``IndexError`` / ``LookupError`` — those dicts are the runtime's own
  shard/pool bookkeeping, so a silent miss is a hidden engine bug.
* **R004** — no mutation of frozen-dataclass fields via
  ``object.__setattr__`` outside ``__post_init__``.
* **R005** — no nondeterminism in the core pipeline: no module-level
  ``random.*`` calls (inject a ``random.Random``), no wall-clock
  imports outside :mod:`repro.obs`.

Allowlisting: append ``# lint: allow R00X — reason`` to the offending
line (or put it on the line directly above).  The pragma must name the
rule code; a reason is strongly encouraged and every in-tree use has
one.  Findings serialize to JSON (``--json``) for machine consumption.

Adding a rule: subclass :class:`Rule` in :mod:`repro.analysis.rules`,
give it a ``code``/``title`` and a ``check`` method yielding
:class:`Finding` objects, and append it to ``ALL_RULES``.  Fixture
tests in ``tests/analysis/`` must cover both a firing and a clean
example (the test harness enforces this for every registered rule).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .rules import Rule

__all__ = [
    "ALLOW_PRAGMA",
    "Finding",
    "ParsedModule",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
]

#: ``# lint: allow R001`` or ``# lint: allow R001,R003 — reason``.
ALLOW_PRAGMA = re.compile(r"#\s*lint:\s*allow\s+([A-Z0-9, ]+)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return dict(asdict(self))

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


class ParsedModule:
    """A parsed source file plus the indexes the rules share.

    The pragma index maps line numbers to the set of rule codes the
    line (or the line above it) allowlists; rules consult it through
    :meth:`allowed` so the mechanism is uniform across rules.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.pragmas: dict[int, frozenset[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = ALLOW_PRAGMA.search(line)
            if match:
                codes = frozenset(
                    code.strip()
                    for code in match.group(1).split(",")
                    if code.strip()
                )
                self.pragmas[number] = codes

    def allowed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is allowlisted at ``line`` (same or previous)."""
        for candidate in (line, line - 1):
            codes = self.pragmas.get(candidate)
            if codes and rule in codes:
                return True
        return False

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding | None:
        """Build a finding for ``node`` unless a pragma allowlists it."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        if self.allowed(rule, line):
            return None
        return Finding(
            rule=rule, path=self.path, line=line, column=column, message=message
        )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files and directories into ``*.py`` files, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def analyze_source(
    path: str, source: str, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Run the rules over one in-memory module (fixture tests use this)."""
    from .rules import ALL_RULES

    module = ParsedModule(path, source)
    active = rules if rules is not None else ALL_RULES
    findings: list[Finding] = []
    for rule in active:
        findings.extend(rule.check(module))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings


def analyze_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Run the rules over files and directories; the main entry point."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(
            analyze_source(str(path), path.read_text(encoding="utf-8"), rules)
        )
    return findings
