"""XSD generation (Section 9)."""

from repro.xmlio.dtd import parse_dtd
from repro.xmlio.xsd import dtd_to_xsd


def test_structure_and_occurs():
    dtd = parse_dtd(
        "<!ELEMENT r (a, b?, c+, (d|e)*)>"
        "<!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        "<!ELEMENT d EMPTY><!ELEMENT e EMPTY>"
    )
    xsd = dtd_to_xsd(dtd)
    assert '<xs:element ref="a"/>' in xsd
    assert '<xs:element ref="b" minOccurs="0"/>' in xsd
    assert '<xs:element ref="c" maxOccurs="unbounded"/>' in xsd
    assert '<xs:choice minOccurs="0" maxOccurs="unbounded">' in xsd


def test_numerical_predicates_become_occurs():
    """The paper's minOccurs/maxOccurs rendering of a=2 b>=2."""
    dtd = parse_dtd("<!ELEMENT r (a{2,2}, b{2,})><!ELEMENT a EMPTY><!ELEMENT b EMPTY>")
    xsd = dtd_to_xsd(dtd)
    assert '<xs:element ref="a" minOccurs="2" maxOccurs="2"/>' in xsd
    assert '<xs:element ref="b" minOccurs="2" maxOccurs="unbounded"/>' in xsd


def test_text_types_applied():
    dtd = parse_dtd("<!ELEMENT r (y)><!ELEMENT y (#PCDATA)>")
    xsd = dtd_to_xsd(dtd, text_types={"y": "xs:integer"})
    assert '<xs:element name="y" type="xs:integer"/>' in xsd


def test_mixed_content():
    dtd = parse_dtd("<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>")
    xsd = dtd_to_xsd(dtd)
    assert '<xs:complexType mixed="true">' in xsd
    assert '<xs:element ref="em"/>' in xsd


def test_attributes():
    dtd = parse_dtd(
        "<!ELEMENT a EMPTY><!ATTLIST a id NMTOKEN #REQUIRED note CDATA #IMPLIED>"
    )
    xsd = dtd_to_xsd(dtd)
    assert '<xs:attribute name="id" type="xs:NMTOKEN" use="required"/>' in xsd
    assert '<xs:attribute name="note" type="xs:string"/>' in xsd


def test_single_particle_wrapped_in_sequence():
    dtd = parse_dtd("<!ELEMENT r (a+)><!ELEMENT a EMPTY>")
    xsd = dtd_to_xsd(dtd)
    assert "<xs:sequence>" in xsd


def test_target_namespace():
    dtd = parse_dtd("<!ELEMENT a EMPTY>")
    xsd = dtd_to_xsd(dtd, target_namespace="urn:example")
    assert 'targetNamespace="urn:example"' in xsd


def test_start_element_first():
    dtd = parse_dtd("<!ELEMENT z EMPTY><!ELEMENT a (z)>")
    dtd.start = "a"
    xsd = dtd_to_xsd(dtd)
    assert xsd.index('name="a"') < xsd.index('name="z"')
