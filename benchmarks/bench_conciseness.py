"""Experiment E1 — Figures 1-3 and expressions (†)/(‡).

The paper's opening argument: applying classical state elimination to
the Figure 1 automaton yields the monstrous expression (†), while the
rewrite system finds the 12-token SORE (‡) ``((b?(a+c))+d)+e``.  This
bench regenerates the comparison (including the elimination-order
heuristics from the automata-to-RE literature) and times ``rewrite``.
"""

import random

from repro.automata.elimination import state_elimination
from repro.core.idtd import idtd_from_soa
from repro.core.rewrite import rewrite
from repro.evaluation.tables import Table
from repro.learning.tinf import tinf
from repro.regex.printer import to_paper_syntax

FIGURE1_WORDS = [tuple(w) for w in ["bacacdacde", "cbacdbacde", "abccaadcde"]]
FIGURE2_WORDS = FIGURE1_WORDS[:2]


def test_dagger_vs_sore(benchmark):
    """(†) vs (‡): token counts of elimination orders vs rewrite."""
    soa = tinf(FIGURE1_WORDS)
    result = benchmark(lambda: rewrite(soa))
    sore = result.regex
    assert sore is not None

    table = Table(
        headers=("method", "tokens", "expression"),
        title="E1: automaton-to-RE conciseness on the Figure 1 automaton "
        "(paper: (†) is huge, (‡) has 12 tokens)",
    )
    table.add("rewrite (SORE, ‡)", sore.token_count(), to_paper_syntax(sore))
    for order in ("natural", "min_degree"):
        eliminated = state_elimination(soa, order=order)
        table.add(f"state elimination [{order}]", eliminated.token_count(), "(†)-like")
    eliminated = state_elimination(soa, order="random", rng=random.Random(1))
    table.add("state elimination [random]", eliminated.token_count(), "(†)-like")
    table.show()

    assert sore.token_count() == 12
    assert to_paper_syntax(sore) == "((b? (a + c))+ d)+ e"


def test_figure2_repair_recovers_intended_expression(benchmark):
    """Figure 2: the non-representative sample; iDTD's repair wins."""
    soa = tinf(FIGURE2_WORDS)
    assert not rewrite(soa).succeeded  # rewrite alone is stuck
    result = benchmark(lambda: idtd_from_soa(soa))

    table = Table(
        headers=("stage", "outcome"),
        title="E1b: Figure 2 (missing edges) — repair rules at work",
    )
    table.add("rewrite alone", "fails (no equivalent SORE)")
    table.add("iDTD repairs applied", len(result.repairs))
    table.add("iDTD result", to_paper_syntax(result.regex))
    table.add("paper's intended RE", "((b? (a + c))+ d)+ e")
    table.show()

    assert to_paper_syntax(result.regex) == "((b? (a + c))+ d)+ e"


def test_sore_size_vs_minimal_dfa(benchmark):
    """SOREs track the minimal DFA: symbol occurrences = SOA states.

    The Ehrenfeucht-Zeiger argument is about REs, not automata — the
    minimal DFA of the Figure 1 language is small, yet no classical
    RE extraction finds a small expression.  SOREs close that gap.
    """
    from repro.automata.dfa import minimal_dfa_size
    from repro.regex.parser import parse_regex

    table = Table(
        headers=("language", "minimal DFA states", "SORE tokens",
                 "elimination tokens"),
        title="E1d: expression size vs automaton size",
    )
    for text in (
        "((b? (a + c))+ d)+ e",
        "a1 a2? (a3 + a4)* a5",
        "(x + y + z)+ w?",
    ):
        target = parse_regex(text)
        from repro.automata.soa import SOA

        soa = SOA.from_regex(target)
        eliminated = state_elimination(soa)
        table.add(
            text,
            minimal_dfa_size(target),
            target.token_count(),
            eliminated.token_count(),
        )
    table.show()
    target = parse_regex("((b? (a + c))+ d)+ e")
    benchmark(lambda: minimal_dfa_size(target))
    # the SORE stays within a small factor of the minimal DFA while the
    # eliminated expression does not
    assert target.token_count() <= 3 * minimal_dfa_size(target)


def test_elimination_blowup_grows_with_alphabet(benchmark):
    """Ehrenfeucht-Zeiger flavour: the gap widens as automata grow."""
    from repro.automata.soa import SOA
    from repro.regex.parser import parse_regex

    table = Table(
        headers=("symbols", "rewrite tokens", "elimination tokens", "ratio"),
        title="E1c: conciseness gap vs alphabet size for ((x1+..+xn)+ y)+ z",
    )
    rows = []
    for n in (2, 4, 6, 8):
        body = " + ".join(f"x{i}" for i in range(n))
        target = parse_regex(f"(({body})+ y)+ z")
        soa = SOA.from_regex(target)
        sore = rewrite(soa).regex
        eliminated = state_elimination(soa, order="min_degree")
        ratio = eliminated.token_count() / sore.token_count()
        rows.append((n, sore.token_count(), eliminated.token_count(), ratio))
        table.add(n, sore.token_count(), eliminated.token_count(), f"{ratio:.1f}x")
    table.show()

    # time the largest case
    target = parse_regex("((x0 + x1 + x2 + x3 + x4 + x5 + x6 + x7)+ y)+ z")
    soa = SOA.from_regex(target)
    benchmark(lambda: state_elimination(soa, order="min_degree"))

    ratios = [row[3] for row in rows]
    assert ratios[-1] > ratios[0]  # the gap grows
