"""SOA semantics, trimming, inclusion, and Proposition 1."""

import pytest
from hypothesis import given, settings

from repro.automata.soa import NotSingleOccurrenceError, SOA
from repro.regex.language import matches
from repro.regex.parser import parse_regex

from ..conftest import sores


def figure1_soa() -> SOA:
    """The automaton of Figure 1 ((I,F,S) for the 3-string sample)."""
    grams = "aa ad ac ab ba bc cb cc ca cd da db dc de"
    return SOA(
        symbols=set("abcde"),
        initial=set("abc"),
        final={"e"},
        edges={(g[0], g[1]) for g in grams.split()},
    )


class TestSemantics:
    def test_accepts_paper_sample(self):
        soa = figure1_soa()
        for word in ["bacacdacde", "cbacdbacde", "abccaadcde"]:
            assert soa.accepts(tuple(word))

    def test_rejects(self):
        soa = figure1_soa()
        assert not soa.accepts(tuple("e"))  # e cannot start
        assert not soa.accepts(tuple("ad"))  # d is not final
        assert not soa.accepts(tuple("aed"))  # no (a, e) gram
        assert not soa.accepts(())

    def test_accepts_empty_flag(self):
        soa = SOA(symbols={"a"}, initial={"a"}, final={"a"}, edges=set(),
                  accepts_empty=True)
        assert soa.accepts(())
        assert soa.accepts(("a",))
        assert not soa.accepts(("a", "a"))

    def test_validation_rejects_unknown_symbols(self):
        with pytest.raises(ValueError):
            SOA(symbols={"a"}, initial={"b"}, final={"a"}, edges=set())
        with pytest.raises(ValueError):
            SOA(symbols={"a"}, initial={"a"}, final={"a"}, edges={("a", "z")})

    def test_edge_count_includes_virtual_edges(self):
        soa = figure1_soa()
        assert soa.edge_count() == 14 + 3 + 1


class TestTrim:
    def test_removes_unreachable_states(self):
        soa = SOA(
            symbols={"a", "b", "z"},
            initial={"a"},
            final={"b"},
            edges={("a", "b"), ("z", "b")},
        )
        trimmed = soa.trimmed()
        assert trimmed.symbols == {"a", "b"}
        assert trimmed.edges == {("a", "b")}

    def test_removes_dead_end_states(self):
        soa = SOA(
            symbols={"a", "b", "z"},
            initial={"a"},
            final={"b"},
            edges={("a", "b"), ("a", "z")},
        )
        assert soa.trimmed().symbols == {"a", "b"}

    def test_trim_preserves_language_samples(self):
        soa = figure1_soa()
        assert soa.trimmed().language_equal(soa)


class TestInclusion:
    def test_subautomaton_included(self):
        fig1 = figure1_soa()
        grams = "ba ac ca cd da de cb db"
        fig2 = SOA(
            symbols=set("abcde"),
            initial=set("bc"),
            final={"e"},
            edges={(g[0], g[1]) for g in grams.split()},
        )
        assert fig2.language_included(fig1)
        assert not fig1.language_included(fig2)

    def test_empty_flag_inclusion(self):
        base = SOA(symbols={"a"}, initial={"a"}, final={"a"}, edges=set())
        with_empty = base.copy()
        with_empty.accepts_empty = True
        assert base.language_included(with_empty)
        assert not with_empty.language_included(base)


class TestProposition1:
    """Every SORE has a unique SOA with the same language."""

    def test_from_regex_on_paper_expression(self):
        soa = SOA.from_regex(parse_regex("((b? (a + c))+ d)+ e"))
        assert soa.language_equal(figure1_soa())

    def test_from_regex_rejects_repeated_symbols(self):
        with pytest.raises(NotSingleOccurrenceError):
            SOA.from_regex(parse_regex("a (a + b)*"))

    @settings(max_examples=40, deadline=None)
    @given(sores(max_symbols=6))
    def test_soa_agrees_with_regex_on_words(self, expression):
        from repro.datagen.strings import representative_sample

        soa = SOA.from_regex(expression)
        for word in representative_sample(expression):
            assert soa.accepts(word) == matches(expression, word)
