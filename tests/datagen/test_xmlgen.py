"""XML generation from DTDs (ToXgene substitute)."""

import random

import pytest

from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.xmlio.dtd import parse_dtd
from repro.xmlio.parser import parse_document
from repro.xmlio.validate import validate

DTD = parse_dtd(
    """
    <!ELEMENT doc (head, item*)>
    <!ELEMENT head (#PCDATA)>
    <!ELEMENT item (name, qty?)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT qty (#PCDATA)>
    <!ATTLIST item sku NMTOKEN #REQUIRED>
    """
)


class TestGeneration:
    def test_documents_conform_to_the_dtd(self):
        generator = XmlGenerator(DTD, random.Random(1))
        for document in generator.corpus(25):
            assert not validate(document, DTD)

    def test_required_attributes_always_present(self):
        generator = XmlGenerator(DTD, random.Random(2))
        for document in generator.corpus(10):
            for item in document.root.find_all("item"):
                assert "sku" in item.attributes

    def test_recursive_dtd_terminates(self):
        recursive = parse_dtd(
            "<!ELEMENT tree (leaf | tree, tree)>" "<!ELEMENT leaf EMPTY>"
        )
        generator = XmlGenerator(recursive, random.Random(3), max_depth=6)
        document = generator.document()
        depths = [0]

        def walk(element, depth):
            depths[0] = max(depths[0], depth)
            for child in element.children:
                walk(child, depth + 1)

        walk(document.root, 0)
        assert depths[0] <= 8  # cap + slack for the forced short path

    def test_custom_text_makers(self):
        generator = XmlGenerator(
            DTD, random.Random(4), text_makers={"qty": lambda r: "42"}
        )
        corpus = generator.corpus(20)
        values = [
            element.text()
            for document in corpus
            for element in document.iter()
            if element.name == "qty"
        ]
        assert values and all(value == "42" for value in values)

    def test_missing_start_rejected(self):
        headless = parse_dtd("<!ELEMENT a EMPTY>")
        headless.start = "nope"
        with pytest.raises(ValueError):
            XmlGenerator(headless, random.Random(0))


class TestSerialization:
    def test_round_trip_through_the_parser(self):
        generator = XmlGenerator(DTD, random.Random(5))
        document = generator.document()
        text = serialize(document)
        reparsed = parse_document(text)
        assert reparsed.root.name == document.root.name
        assert not validate(reparsed, DTD)

    def test_escaping(self):
        from repro.xmlio.tree import Document, Element

        root = Element("r", attributes={"x": 'a"<&'})
        root.text_chunks.append("1 < 2 & 3 > 2")
        text = serialize(Document(root=root))
        reparsed = parse_document(text)
        assert reparsed.root.attributes["x"] == 'a"<&'
        assert reparsed.root.text().strip() == "1 < 2 & 3 > 2"
