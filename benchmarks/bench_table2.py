"""Experiment E3 — Table 2: sophisticated real-world expressions.

example1..example5 from DTDs studied in [10], with generated data
(our ToXgene substitute).  Expected shape, per the paper:

* CRX reproduces its row exactly on all five;
* iDTD reproduces its row exactly on example1-4 and finds a
  language-equivalent (one token smaller) SORE on example5;
* XTRACT needs its sample capped (300-500) and still emits expressions
  an order of magnitude larger.
"""

import pytest

from repro.baselines.xtract import XtractCapacityError, xtract
from repro.core.crx import crx
from repro.core.idtd import idtd
from repro.datagen.corpora import TABLE2
from repro.datagen.strings import padded_sample
from repro.evaluation.tables import Table
from repro.regex.language import language_equivalent
from repro.regex.normalize import syntactically_equal
from repro.regex.printer import to_paper_syntax

#: Paper sample sizes are up to 10000; cap generation for the quick scale.
_SIZE_CAP = 2500


@pytest.mark.parametrize("row", TABLE2, ids=lambda r: r.element)
def test_table2_row(row, rng, scale, benchmark):
    size = row.sample_size if scale.is_full else min(row.sample_size, _SIZE_CAP)
    sample = padded_sample(row.generator(), size, rng)
    crx_result = crx(sample)
    idtd_result = benchmark(lambda: idtd(sample))

    try:
        xtract_result = xtract(
            sample[: min(row.xtract_sample_size, scale.xtract_cap)]
        )
        xtract_cell = f"{xtract_result.token_count()} tokens"
    except XtractCapacityError as error:
        xtract_cell = f"capacity error ({error})"

    table = Table(
        headers=("source", "expression / outcome"),
        title=f"E3: Table 2 '{row.element}' (sample {len(sample)}, "
        f"paper {row.sample_size})",
    )
    table.add("original DTD", row.original_dtd)
    table.add("paper crx", row.expected_crx)
    table.add("measured crx", to_paper_syntax(crx_result))
    table.add("paper iDTD", row.expected_idtd)
    table.add("measured iDTD", to_paper_syntax(idtd_result))
    table.add("paper xtract", row.xtract_outcome)
    table.add("measured xtract", xtract_cell)
    table.show()

    assert syntactically_equal(crx_result, row.crx_target())
    if row.element == "example5":
        assert language_equivalent(idtd_result, row.idtd_target())
        assert idtd_result.token_count() <= row.idtd_target().token_count()
    else:
        assert syntactically_equal(idtd_result, row.idtd_target())


def test_xtract_token_blowup_on_heterogeneous_data(rng, scale, benchmark):
    """XTRACT's output grows with data diversity; CHAREs stay linear."""
    row = TABLE2[1]  # example2: 18 symbols
    table = Table(
        headers=("sample size", "crx tokens", "xtract tokens"),
        title="E3b: output size vs sample size (example2)",
    )
    sizes = (30, 80, scale.xtract_cap)
    xtract_sizes = []
    for size in sizes:
        sample = padded_sample(row.generator(), size, rng)
        crx_tokens = crx(sample).token_count()
        try:
            xtract_tokens = xtract(sample).token_count()
            xtract_sizes.append(xtract_tokens)
            table.add(size, crx_tokens, xtract_tokens)
        except XtractCapacityError:
            table.add(size, crx_tokens, "capacity error")
    table.show()
    sample = padded_sample(row.generator(), 80, rng)
    benchmark(lambda: xtract(sample))
    # xtract output grows with the sample; crx stays fixed
    if len(xtract_sizes) >= 2:
        assert xtract_sizes[-1] >= xtract_sizes[0]
