"""XTRACT baseline: pipeline stages and the two reported failure modes."""

import random

import pytest

from repro.baselines.xtract import (
    XtractCapacityError,
    generalize,
    mdl_select,
    xtract,
)
from repro.core.crx import crx
from repro.datagen.corpora import table1_row
from repro.datagen.strings import padded_sample
from repro.regex.language import matches
from repro.regex.parser import parse_regex


class TestGeneralization:
    def test_literal_always_included(self):
        candidates = generalize(("a", "b", "c"))
        assert parse_regex("a b c") in candidates

    def test_repeats_folded(self):
        candidates = generalize(("a", "b", "b", "b", "c"))
        assert parse_regex("a b+ c") in candidates

    def test_period_two_folding(self):
        candidates = generalize(("a", "b", "a", "b", "c"))
        assert parse_regex("(a b)+ c") in candidates

    def test_empty_word_has_no_candidates(self):
        assert generalize(()) == []


class TestMdl:
    def test_prefers_folded_candidate_for_repetitive_data(self):
        words = [tuple("ab" * k) for k in (1, 2, 3, 4, 5)]
        candidates = [parse_regex("(a b)+")] + [
            c for w in words for c in generalize(w)
        ]
        selected = mdl_select(candidates, words, budget=100000)
        assert parse_regex("(a b)+") in selected

    def test_budget_enforced(self):
        words = [(f"s{i}",) for i in range(20)]
        candidates = [parse_regex(f"s{i}") for i in range(20)]
        with pytest.raises(XtractCapacityError):
            mdl_select(candidates, words, budget=10)


class TestPipeline:
    def test_sample_always_covered(self, rng):
        row = table1_row("organism")
        sample = padded_sample(row.generator(), 40, rng)
        regex = xtract(sample)
        for word in sample:
            if word:
                assert matches(regex, word)

    def test_blowup_vs_crx(self, rng):
        """Failure mode 1: disjunction-heavy output larger than CHAREs."""
        row = table1_row("refinfo")
        sample = padded_sample(row.generator(), 60, rng)
        assert xtract(sample).token_count() > crx(sample).token_count()

    def test_capacity_failure(self, rng):
        """Failure mode 2: >1000 distinct strings are rejected."""
        words = [tuple(f"s{i}" for i in range(k % 11)) for k in range(3000)]
        distinct = {w for w in words if w}
        if len(distinct) <= 1000:  # construct guaranteed-many distincts
            words = [(f"a{i}", f"b{i}") for i in range(1500)]
        with pytest.raises(XtractCapacityError):
            xtract(words)

    def test_capacity_configurable(self):
        words = [(f"a{i}",) for i in range(30)]
        with pytest.raises(XtractCapacityError):
            xtract(words, capacity=10)
        assert xtract(words, capacity=100) is not None

    def test_empty_only_rejected(self):
        with pytest.raises(ValueError):
            xtract([()])

    def test_empty_words_make_result_nullable(self):
        regex = xtract([(), ("a",)])
        assert regex.nullable()


class TestFactoring:
    def test_common_prefix_factored(self):
        # organism-like data: a1 a3, a1 a2 a3 → a1(...) shape
        words = [tuple(["a1", "a3"]), tuple(["a1", "a2", "a3"])]
        regex = xtract(words)
        assert matches(regex, words[0]) and matches(regex, words[1])
        # the factored result mentions a1 exactly once
        assert regex.symbol_occurrences()["a1"] == 1
