"""Parse-throughput benchmark for the bulk-scanning tokenizer.

Measures raw XML parse speed (MB/s of UTF-8 input) at three corpus
scales and records them as the ``parse_throughput`` section of
``BENCH_phases.json``, where :mod:`benchmarks.perf_gate` holds a floor
under each number:

* ``small``  — many tiny documents (the quick-profile shape from
  ``bench_phases.py``): dominated by per-document dispatch;
* ``medium`` — kilobyte-scale documents: the mixed tag/text regime of
  real corpora;
* ``large``  — one multi-megabyte file parsed through
  :func:`parse_file`, which takes the mmap input path and decodes the
  mapped pages in a single pass.

The rebuild from character-at-a-time stepping to ``str.find`` runs +
regex dispatch (:mod:`repro.xmlio.scan`) took the quick profile from
~2.6 MB/s to ~10 MB/s; the gate keeps any future tokenizer change
honest about that win.
"""

from __future__ import annotations

import random

import pytest

from perf_record import update_bench_json
from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.evaluation.tables import Table
from repro.evaluation.timing import best_of
from repro.obs import StatsRecorder
from repro.xmlio.dtd import parse_dtd
from repro.xmlio.parser import parse_document, parse_file

CORPUS_DTD = (
    "<!ELEMENT r (meta?, item+)>"
    "<!ELEMENT meta (#PCDATA)>"
    "<!ELEMENT item (name, price?, tag*)>"
    "<!ELEMENT name (#PCDATA)>"
    "<!ELEMENT price (#PCDATA)>"
    "<!ELEMENT tag EMPTY>"
)


def _small_corpus(count: int) -> list[str]:
    generator = XmlGenerator(parse_dtd(CORPUS_DTD), random.Random(42))
    return [serialize(document) for document in generator.corpus(count)]


def _medium_document(items: int) -> str:
    parts = ["<catalog>"]
    for index in range(items):
        parts.append(
            f'<item id="{index}" cat="c{index % 7}">'
            f"<name>item {index} &amp; co</name>"
            f"<price>{index % 90}.{index % 100:02d}</price>"
            f"<desc>desc with <![CDATA[raw & data]]> inside</desc>"
            "<tag/><tag/>"
            "</item>"
        )
    parts.append("</catalog>")
    return "".join(parts)


def _throughput(documents: list[str], repeats: int) -> dict[str, float]:
    total_bytes = sum(len(doc.encode("utf-8")) for doc in documents)

    def run() -> None:
        for document in documents:
            parse_document(document)

    seconds = best_of(run, repeats=repeats).seconds
    return {
        "documents": len(documents),
        "bytes": total_bytes,
        "seconds": seconds,
        "mb_per_s": total_bytes / seconds / 1e6 if seconds else 0.0,
    }


def test_parse_throughput_recorded(tmp_path, scale):
    """MB/s at three corpus scales, written to BENCH_phases.json."""
    repeats = 9 if scale.is_full else 5
    small = _throughput(_small_corpus(300 if scale.is_full else 100), repeats)
    medium = _throughput(
        [_medium_document(3000 if scale.is_full else 500)], repeats
    )

    # Large scale goes through parse_file so the mmap path is the
    # thing being measured (file > MMAP_MIN_BYTES).
    big = _medium_document(12000)  # ~1.6 MB, over the mmap threshold
    path = tmp_path / "large.xml"
    path.write_text(big, encoding="utf-8")
    recorder = StatsRecorder()

    def run_large() -> None:
        parse_file(str(path), recorder)

    seconds = best_of(run_large, repeats=3).seconds
    large_bytes = len(big.encode("utf-8"))
    large = {
        "documents": 1,
        "bytes": large_bytes,
        "seconds": seconds,
        "mb_per_s": large_bytes / seconds / 1e6 if seconds else 0.0,
        "mmap": recorder.snapshot()["counters"].get("parse.mmap", 0) > 0,
    }
    assert large["mmap"], "large file did not take the mmap path"

    payload = {"small": small, "medium": medium, "large": large}
    table = Table(
        headers=("corpus", "docs", "bytes", "MB/s"),
        title="parse throughput (bulk tokenizer)",
    )
    for name, row in payload.items():
        table.add(
            name,
            str(row["documents"]),
            str(row["bytes"]),
            f"{row['mb_per_s']:.2f}",
        )
    table.show()
    update_bench_json("parse_throughput", payload)
    # Every scale must beat the old character-at-a-time tokenizer's
    # ~2.6 MB/s ceiling with real margin; perf_gate.py enforces the
    # committed numbers with a relative band on top of this floor.
    for name, row in payload.items():
        assert row["mb_per_s"] > 3.0, (
            f"{name}: {row['mb_per_s']:.2f} MB/s is no faster than the "
            "old per-character tokenizer"
        )


def test_mmap_and_read_paths_parse_identically(tmp_path):
    """The mmap fast path must be invisible in the parsed tree."""
    text = _medium_document(400)
    path = tmp_path / "doc.xml"
    path.write_text(text, encoding="utf-8")
    mapped = parse_file(str(path), use_mmap=True)
    plain = parse_file(str(path), use_mmap=False)
    in_memory = parse_document(text)

    def shape(element):
        return (
            element.name,
            element.attributes,
            element.text_chunks,
            [shape(child) for child in element.children],
        )

    assert shape(mapped.root) == shape(plain.root) == shape(in_memory.root)


@pytest.mark.parametrize("pipeline", ["batch", "streaming"])
def test_throughput_counters_surface_in_stats(tmp_path, pipeline):
    """parse.bytes / parse.chars land in --stats for throughput math."""
    from repro.api import InferenceConfig, infer

    paths = []
    for index, document in enumerate(_small_corpus(20)):
        path = tmp_path / f"doc{index:03d}.xml"
        path.write_text(document, encoding="utf-8")
        paths.append(str(path))
    recorder = StatsRecorder()
    config = InferenceConfig(
        recorder=recorder, streaming=pipeline == "streaming"
    )
    infer(paths, config=config)
    counters = recorder.snapshot()["counters"]
    assert counters["parse.bytes"] > 0
    assert counters["parse.chars"] > 0
    assert counters["documents"] == 20
