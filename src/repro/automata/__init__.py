"""Automata toolkit: SOAs, generalized automata, and conversions.

* :class:`SOA` — single occurrence automata, the paper's state-labelled
  automata for 2-testable languages (Sections 3–4);
* :class:`GFA` — generalized finite automata with SORE state labels,
  the data structure the rewrite system of Section 5 operates on,
  including its ε-closure;
* :func:`state_elimination` — the classical automaton→RE translation
  used as the conciseness anti-baseline (expression (†));
* exact language comparisons between SOAs and regular expressions.
"""

from .dfa import DFA, from_regex as dfa_from_regex, isomorphic, minimal_dfa_size, minimize
from .dot import gfa_to_dot, soa_to_dot
from .compare import (
    regex_included_in_soa,
    regex_vs_soa_counterexample,
    soa_equivalent_to_regex,
    soa_included_in_regex,
    soa_vs_regex_counterexample,
)
from .elimination import state_elimination
from .gfa import GFA, SINK, SOURCE, Closure
from .soa import NotSingleOccurrenceError, SOA

__all__ = [
    "DFA",
    "GFA",
    "SINK",
    "SOA",
    "SOURCE",
    "Closure",
    "dfa_from_regex",
    "NotSingleOccurrenceError",
    "gfa_to_dot",
    "isomorphic",
    "minimal_dfa_size",
    "minimize",
    "regex_included_in_soa",
    "regex_vs_soa_counterexample",
    "soa_equivalent_to_regex",
    "soa_included_in_regex",
    "soa_to_dot",
    "soa_vs_regex_counterexample",
    "state_elimination",
]
