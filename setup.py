"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable in offline environments whose
setuptools/pip combination lacks the `wheel` package required by the
PEP 517 editable path (use: pip install -e . --no-build-isolation
--no-use-pep517).
"""

from setuptools import setup

setup()
