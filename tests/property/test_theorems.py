"""Property-based tests of the paper's theorems, end to end.

These are the heavyweight invariants; the per-module suites test the
mechanics, this file tests the *claims*:

* Theorem 1 — rewrite is sound and complete on SOAs of SOREs;
* Theorem 2 — iDTD always yields a SORE superset;
* Theorem 3 — CRX always yields a CHARE superset;
* Theorem 4 — CRX recovers every CHARE from its representative sample;
* Claim 2  — rewrite is confluent (any rule order works);
* Proposition 1 — SOAs of SOREs are unique (language-canonical).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.automata.compare import soa_included_in_regex
from repro.automata.soa import SOA
from repro.core.crx import crx
from repro.core.idtd import idtd_from_soa
from repro.core.rewrite import rewrite
from repro.datagen.strings import representative_sample
from repro.learning.tinf import tinf
from repro.regex.classify import is_chare, is_sore
from repro.regex.language import language_equivalent, matches
from repro.regex.normalize import normalize

from ..conftest import build_random_sore, chares, sores, word_samples

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(sores(max_symbols=8))
def test_theorem1_soundness_and_completeness(target):
    soa = SOA.from_regex(target)
    result = rewrite(soa)
    assert result.succeeded
    assert language_equivalent(result.regex, target)
    assert is_sore(result.regex)


@RELAXED
@given(word_samples())
def test_theorem2_idtd_superset(words):
    if not any(words):
        return
    soa = tinf(words)
    result = idtd_from_soa(soa)
    assert is_sore(result.regex)
    assert soa_included_in_regex(soa, result.regex)


@RELAXED
@given(word_samples())
def test_theorem3_crx_superset(words):
    if not any(words):
        return
    regex = crx(words)
    assert is_chare(regex)
    assert all(matches(regex, word) for word in words)


@RELAXED
@given(chares(max_symbols=8))
def test_theorem4_crx_completeness(target):
    sample = representative_sample(target)
    assert language_equivalent(crx(sample), target)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=2**31),
)
def test_claim2_confluence(sore_seed, order_seed):
    rng = random.Random(sore_seed)
    target = normalize(
        build_random_sore(rng, [f"x{i}" for i in range(rng.randint(1, 6))])
    )
    result = rewrite(SOA.from_regex(target), rng=random.Random(order_seed))
    assert result.succeeded
    assert language_equivalent(result.regex, target)


@RELAXED
@given(sores(max_symbols=7))
def test_proposition1_soa_is_canonical(target):
    """Two language-equal SOREs have identical (trimmed) SOAs."""
    result = rewrite(SOA.from_regex(target))
    round_tripped = SOA.from_regex(result.regex)
    assert round_tripped.language_equal(SOA.from_regex(target))
    assert round_tripped.trimmed().edges == SOA.from_regex(target).trimmed().edges


@RELAXED
@given(sores(max_symbols=6))
def test_learning_pipeline_from_representative_samples(target):
    """2T-INF + rewrite learns every SORE from a representative sample
    — the composition that justifies iDTD's design."""
    sample = representative_sample(target)
    result = rewrite(tinf(sample))
    assert result.succeeded
    assert language_equivalent(result.regex, target)
