"""Determinism fuzz harness for the kore/sire learners.

Every expression the extension learners emit must pass the
one-unambiguity check — the fallback-to-smaller-k / fallback-to-chare
machinery exists precisely so a deterministic candidate always wins.
This harness hammers that claim across hundreds of seeded corpora
(repeated-symbol, shuffled, and mixed shapes) and, when a violation
appears, *shrinks* the corpus — dropping whole words, then individual
symbols — to a minimal counterexample that still violates the
property, so the failure message is a directly re-runnable repro.
"""

from __future__ import annotations

import random
from collections.abc import Callable

import pytest

from repro.datagen.occurrences import fuzz_corpus
from repro.datagen.strings import Word
from repro.errors import CorpusError
from repro.learning.kore import IncrementalKore
from repro.learning.sire import IncrementalSire
from repro.regex.classify import is_deterministic
from repro.regex.language import matches
from repro.regex.printer import to_paper_syntax

#: ≥200 seeds per learner, split into parametrized batches so a
#: failure names its seed range without paying 400 test setups.
SEED_COUNT = 200
BATCH = 20
SEED_BATCHES = [
    range(start, start + BATCH) for start in range(0, SEED_COUNT, BATCH)
]

Learner = IncrementalKore | IncrementalSire
LEARNERS: dict[str, Callable[[], Learner]] = {
    "kore": IncrementalKore,
    "sire": IncrementalSire,
}


def violates(make_learner: Callable[[], Learner], words: list[Word]) -> bool:
    """True when learning ``words`` emits a non-deterministic or
    unsound expression (the property under fuzz)."""
    learner = make_learner()
    learner.add_all(words)
    try:
        expression = learner.infer()
    except CorpusError:
        # Nothing learnable (e.g. only empty words): not a violation.
        return False
    if not is_deterministic(expression):
        return True
    return not all(matches(expression, word) for word in words)


def shrink_corpus(
    words: list[Word], still_fails: Callable[[list[Word]], bool]
) -> list[Word]:
    """Greedily minimize a failing corpus, preserving the failure.

    First pass drops whole words, second drops individual symbols
    inside the surviving words; both repeat to a fixed point.  The
    result is 1-minimal: removing any single word or symbol makes the
    failure disappear.
    """
    current = list(words)
    changed = True
    while changed:
        changed = False
        for index in reversed(range(len(current))):
            candidate = current[:index] + current[index + 1 :]
            if candidate and still_fails(candidate):
                current = candidate
                changed = True
        for index, word in enumerate(current):
            for position in reversed(range(len(word))):
                shorter = word[:position] + word[position + 1 :]
                candidate = (
                    current[:index] + [shorter] + current[index + 1 :]
                )
                if still_fails(candidate):
                    current = candidate
                    word = shorter
                    changed = True
    return current


def report(name: str, seed: int, words: list[Word]) -> str:
    minimal = shrink_corpus(
        words, lambda candidate: violates(LEARNERS[name], candidate)
    )
    learner = LEARNERS[name]()
    learner.add_all(minimal)
    try:
        emitted = to_paper_syntax(learner.infer())
    except CorpusError as error:  # pragma: no cover - diagnostic path
        emitted = f"<CorpusError: {error}>"
    return (
        f"{name} violated determinism/soundness at seed {seed}; "
        f"minimal corpus {minimal!r} emits {emitted}"
    )


@pytest.mark.parametrize("seeds", SEED_BATCHES, ids=lambda r: f"{r.start}-{r.stop - 1}")
@pytest.mark.parametrize("name", sorted(LEARNERS))
def test_emitted_expressions_deterministic_and_sound(name, seeds):
    for seed in seeds:
        _, words = fuzz_corpus(random.Random(seed))
        if violates(LEARNERS[name], words):
            pytest.fail(report(name, seed, words))


class TestShrinker:
    """The shrinker itself, driven by an artificial predicate."""

    def test_shrinks_to_a_single_triggering_word(self):
        words = [("a", "b"), ("x", "c", "d"), ("e",)]
        minimal = shrink_corpus(
            words, lambda ws: any("x" in word for word in ws)
        )
        assert minimal == [("x",)]

    def test_result_still_fails(self):
        predicate = lambda ws: sum(len(w) for w in ws) >= 3  # noqa: E731
        minimal = shrink_corpus([("a", "b"), ("c", "d"), ("e",)], predicate)
        assert predicate(minimal)
        assert sum(len(w) for w in minimal) == 3

    def test_always_failing_predicate_bottoms_out_at_one_empty_word(self):
        # Whole-word drops keep at least one word; symbol drops may
        # empty it — the true 1-minimal corpus for a constant predicate.
        minimal = shrink_corpus([("a", "b"), ("c",)], lambda ws: True)
        assert minimal == [()]
