"""Incremental re-runs: only changed shards re-parse.

The manifest matches shards by *content hash runs*, so the counters
``ckpt.hit`` / ``ckpt.skip`` / ``ckpt.write`` make the reuse behaviour
directly observable: an edit invalidates exactly the shard that held
the edited document, appends re-parse only the new tail, renames cost
nothing, and corrupt cached state degrades to a re-parse instead of an
error.  Every scenario also re-asserts the headline property — the
incremental result is byte-identical to a fresh run over the new
corpus.
"""

from __future__ import annotations

import json
import os

from repro.api import InferenceConfig, infer
from repro.ckpt.manifest import MANIFEST_NAME, load_manifest
from repro.obs.recorder import StatsRecorder

from .conftest import write_corpus

#: 40 documents over 4 thread shards: 10 per shard, so reuse counts
#: below are exact (sharding is by document count, not content).
COUNT = 40
JOBS = 4


def checkpointed(paths, state, resume=False):
    recorder = StatsRecorder()
    rendered = infer(
        paths,
        config=InferenceConfig(
            state_dir=state,
            resume=resume,
            jobs=JOBS,
            backend="thread",
            recorder=recorder,
            faults={},
        ),
    ).render()
    return rendered, recorder.snapshot()["counters"]


def fresh_render(paths):
    return infer(paths, config=InferenceConfig(faults={})).render()


def first_run(tmp_path):
    paths = write_corpus(tmp_path, COUNT)
    state = tmp_path / "run"
    rendered, counters = checkpointed(paths, state)
    assert counters.get("ckpt.write") == JOBS
    assert counters.get("ckpt.hit") is None
    return paths, state, rendered


class TestIncrementalReruns:
    def test_single_edit_reparses_one_shard(self, tmp_path):
        paths, state, _ = first_run(tmp_path)
        # Rewrite one document inside the second shard with different
        # content (a fresh corpus seed guarantees different bytes).
        victim = paths[15]
        write_corpus(tmp_path, 1, seed=999, prefix="edited")
        os.replace(str(tmp_path / "edited000.xml"), victim)

        rendered, counters = checkpointed(paths, state, resume=True)
        assert counters.get("ckpt.hit") == JOBS - 1
        assert counters.get("ckpt.skip") == COUNT - COUNT // JOBS
        assert counters.get("ckpt.write", 0) >= 1
        assert counters.get("ckpt.gc", 0) >= 1  # the stale shard state
        assert rendered == fresh_render(paths)

    def test_appended_documents_reuse_every_old_shard(self, tmp_path):
        paths, state, _ = first_run(tmp_path)
        extra = write_corpus(tmp_path, 4, seed=777, prefix="extra")
        paths = paths + extra

        rendered, counters = checkpointed(paths, state, resume=True)
        assert counters.get("ckpt.hit") == JOBS
        assert counters.get("ckpt.skip") == COUNT
        assert counters.get("ckpt.write", 0) >= 1
        assert rendered == fresh_render(paths)

    def test_deleted_document_invalidates_only_its_shard(self, tmp_path):
        paths, state, _ = first_run(tmp_path)
        os.unlink(paths[3])
        paths = paths[:3] + paths[4:]

        rendered, counters = checkpointed(paths, state, resume=True)
        assert counters.get("ckpt.hit") == JOBS - 1
        assert counters.get("ckpt.skip") == COUNT - COUNT // JOBS
        assert rendered == fresh_render(paths)

    def test_renames_are_free(self, tmp_path):
        paths, state, _ = first_run(tmp_path)
        renamed = []
        for path in paths:
            target = os.path.join(os.path.dirname(path), "moved-" + os.path.basename(path))
            os.replace(path, target)
            renamed.append(target)

        rendered, counters = checkpointed(renamed, state, resume=True)
        assert counters.get("ckpt.hit") == JOBS
        assert counters.get("ckpt.skip") == COUNT
        assert counters.get("ckpt.write") is None  # nothing re-parsed
        assert rendered == fresh_render(renamed)

    def test_unchanged_rerun_parses_nothing_twice(self, tmp_path):
        paths, state, first = first_run(tmp_path)
        rendered, counters = checkpointed(paths, state, resume=True)
        assert counters.get("ckpt.skip") == COUNT
        assert counters.get("ckpt.write") is None
        assert rendered == first


class TestDegradedCaches:
    def test_corrupt_state_file_degrades_to_reparse(self, tmp_path):
        paths, state, first = first_run(tmp_path)
        manifest = load_manifest(state)
        victim = manifest.shards[1].state_file
        target = os.path.join(state, "shards", victim)
        with open(target, "r+b") as handle:
            handle.seek(-3, os.SEEK_END)
            handle.write(b"!!!")

        rendered, counters = checkpointed(paths, state, resume=True)
        assert counters.get("ckpt.corrupt") == 1
        assert counters.get("ckpt.hit") == JOBS - 1
        assert counters.get("ckpt.write", 0) >= 1
        assert rendered == first

    def test_sample_cap_mismatch_drops_every_shard(self, tmp_path):
        paths, state, first = first_run(tmp_path)
        manifest_path = os.path.join(state, MANIFEST_NAME)
        with open(manifest_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["sample_cap"] = payload["sample_cap"] + 1
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)

        rendered, counters = checkpointed(paths, state, resume=True)
        assert counters.get("ckpt.corrupt") == JOBS
        assert counters.get("ckpt.hit") is None
        assert counters.get("ckpt.write") == JOBS
        assert rendered == first
