"""Checkpointed, resumable, incremental corpus runs.

This package persists the streaming inference state
(:class:`repro.learning.evidence.StreamingEvidence`, one per corpus
shard) to a versioned on-disk *run directory* so that

* an interrupted run (``--resume --state-dir RUN/``) continues from the
  last durably committed shard and produces output byte-identical to an
  uninterrupted run, and
* a re-run over a modified corpus re-parses only the documents whose
  content hash changed (plus the shards disturbed by additions or
  deletions), reusing every untouched shard's cached learner state.

Layout of a run directory::

    RUN/
      lock            advisory lock ({pid, host}), held for the run
      manifest.json   shard plan: per-document sha256 -> state file
      shards/
        <digest16>.state   canonical-JSON evidence, checksummed header

All writes are crash-safe (write-tmp + fsync + atomic rename, see
:mod:`repro.fsio`); a shard state file is referenced by the manifest
only after the state bytes themselves are durable, so a kill at any
point leaves a consistent prefix of the run on disk.
"""

from .codec import StateDecodeError, decode_state, encode_state, evidence_digest
from .lock import RunLock, StateDirLocked
from .manifest import DocumentEntry, Manifest, ShardEntry, load_manifest
from .runner import checkpointed_evidence

__all__ = [
    "DocumentEntry",
    "Manifest",
    "RunLock",
    "ShardEntry",
    "StateDecodeError",
    "StateDirLocked",
    "checkpointed_evidence",
    "decode_state",
    "encode_state",
    "evidence_digest",
    "load_manifest",
]
