"""Experiment E10 — checkpointed incremental re-runs (``repro.ckpt``).

The service-style workload the checkpoint subsystem targets: a corpus
is inferred once into a ``--state-dir``, then re-inferred after a tiny
edit (1% of documents).  The manifest's content-hash matching should
reuse every untouched shard, so the incremental run pays for hashing
plus one shard's parse instead of the whole corpus:

* **correctness** — the incremental render must be byte-identical to a
  fresh, uncheckpointed run over the edited corpus (asserted
  unconditionally — it is the whole point of the subsystem);
* **speed** — full extraction vs incremental re-run is timed; the CI
  perf gate holds the floor at a 5x speedup with 1% changed documents;
* **accounting** — ``ckpt.*`` reuse counters land in
  ``BENCH_phases.json`` under the ``ckpt`` section.

Shards are deliberately many (documents/8) so the invalidated slice is
small; a real run sizes shards by backend, but the *ratio* under test
is reuse vs re-parse, not pool throughput — the serial path keeps the
numbers stable on 1-CPU runners.
"""

from __future__ import annotations

import random
import shutil

from perf_record import update_bench_json
from repro.api import InferenceConfig, infer
from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.evaluation.tables import Table
from repro.evaluation.timing import timed
from repro.obs.recorder import StatsRecorder
from repro.xmlio.dtd import parse_dtd

CORPUS_DTD = (
    "<!ELEMENT r (section+)>"
    "<!ELEMENT section (title, para+, note?)>"
    "<!ELEMENT title (#PCDATA)>"
    "<!ELEMENT para (#PCDATA)>"
    "<!ELEMENT note (#PCDATA)>"
)

BEST_OF = 3


def write_corpus(directory, count: int, seed: int = 10) -> list[str]:
    generator = XmlGenerator(parse_dtd(CORPUS_DTD), random.Random(seed))
    paths = []
    for index, document in enumerate(generator.corpus(count)):
        path = directory / f"doc{index:04d}.xml"
        path.write_text(serialize(document), encoding="utf-8")
        paths.append(str(path))
    return paths


def checkpointed_config(state, jobs, resume=False, recorder=None):
    return InferenceConfig(
        state_dir=state,
        resume=resume,
        jobs=jobs,
        backend="thread",
        recorder=recorder or StatsRecorder(),
        faults={},
    )


def test_incremental_rerun_speedup(tmp_path, scale, benchmark):
    count = 400 if scale.is_full else 200
    jobs = max(8, count // 10)  # many shards => a 1% edit hits few
    paths = write_corpus(tmp_path, count)
    state = tmp_path / "run"

    # Populate the checkpoint (timed as the full-run reference) and
    # edit 1% of the documents in place.
    full_seconds = min(
        timed(
            lambda: _populate(paths, tmp_path / f"cold{i}", jobs)
        ).seconds
        for i in range(BEST_OF)
    )
    infer(paths, config=checkpointed_config(state, jobs)).render()
    edited = max(1, count // 100)
    (tmp_path / "edits").mkdir(exist_ok=True)
    replacements = write_corpus(tmp_path / "edits", edited, seed=4242)
    for victim, replacement in zip(paths[::-1], replacements):
        shutil.copyfile(replacement, victim)

    reference = infer(paths, config=InferenceConfig(faults={})).render()
    recorder = StatsRecorder()
    incremental = infer(
        paths,
        config=checkpointed_config(state, jobs, resume=True, recorder=recorder),
    ).render()
    assert incremental == reference  # byte-identical to a fresh run
    counters = recorder.snapshot()["counters"]
    assert counters.get("ckpt.hit", 0) > 0
    assert counters.get("ckpt.skip", 0) >= count - 3 * max(
        1, count // jobs
    ), "a 1% edit should leave almost every shard reusable"

    def rerun():
        return infer(
            paths, config=checkpointed_config(state, jobs, resume=True)
        ).render()

    incremental_seconds = min(timed(rerun).seconds for _ in range(BEST_OF))
    speedup = (
        full_seconds / incremental_seconds
        if incremental_seconds
        else float("inf")
    )

    table = Table(
        headers=("run", "seconds"),
        title=(
            f"E10: checkpointed incremental re-run, {count} documents, "
            f"{edited} edited (best of {BEST_OF})"
        ),
    )
    table.add("full (cold state dir)", f"{full_seconds:.4f}")
    table.add("incremental (1% changed)", f"{incremental_seconds:.4f}")
    table.add("speedup", f"{speedup:.2f}x")
    table.show()
    update_bench_json(
        "ckpt",
        {
            "documents": count,
            "edited_documents": edited,
            "shards": int(counters.get("shards", 0)),
            "hits": int(counters.get("ckpt.hit", 0)),
            "skipped_documents": int(counters.get("ckpt.skip", 0)),
            "full_seconds": full_seconds,
            "incremental_seconds": incremental_seconds,
            "incremental_speedup": speedup,
        },
    )
    benchmark(rerun)
    assert speedup >= 5.0, (
        f"expected reusing 99% of shards to win at least 5x over a "
        f"full run, got {speedup:.2f}x"
    )


def _populate(paths, state, jobs) -> None:
    infer(paths, config=checkpointed_config(state, jobs)).render()


def test_resume_after_interrupt_costs_only_remaining_shards(tmp_path, scale):
    """Crash recovery accounting: resuming a half-finished run loads the
    committed prefix from disk and parses only the rest."""
    count = 120 if scale.is_full else 60
    paths = write_corpus(tmp_path, count)
    state = tmp_path / "run"
    jobs = 6

    full = infer(paths, config=InferenceConfig(faults={})).render()
    half = paths[: count // 2]
    infer(half, config=checkpointed_config(state, jobs)).render()

    recorder = StatsRecorder()
    resumed = infer(
        paths,
        config=checkpointed_config(state, jobs, resume=True, recorder=recorder),
    ).render()
    assert resumed == full
    counters = recorder.snapshot()["counters"]
    assert counters.get("ckpt.skip", 0) >= count // 2 - count // jobs, (
        "the committed first half should be reloaded, not re-parsed"
    )
