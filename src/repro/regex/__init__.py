"""Regular expression engine: the paper's RE grammar and decision procedures.

Public surface:

* AST nodes and smart constructors (:mod:`repro.regex.ast`),
* parsing (:func:`parse_regex`) and printing (paper / DTD syntax),
* normal forms and canonical comparison (:mod:`repro.regex.normalize`),
* SORE / CHARE / determinism classifiers (:mod:`repro.regex.classify`),
* Glushkov position automata (:func:`glushkov`),
* language-level decisions: matching, inclusion, equivalence,
  enumeration (:mod:`repro.regex.language`).
"""

from .ast import (
    Concat,
    Disj,
    Opt,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    chain_factor,
    concat,
    disj,
    sym,
    syms,
)
from .derivatives import matches_by_derivatives
from .classify import (
    is_chare,
    is_deterministic,
    is_single_occurrence,
    is_sore,
)
from .glushkov import Glushkov, glushkov
from .language import (
    counterexample,
    enumerate_words,
    language_equivalent,
    language_included,
    matches,
)
from .normalize import (
    canonical,
    contract_stars,
    expand_stars,
    normalize,
    simplify,
    syntactically_equal,
)
from .parser import RegexSyntaxError, parse_regex
from .printer import to_dtd_syntax, to_paper_syntax

__all__ = [
    "Concat",
    "Disj",
    "Glushkov",
    "Opt",
    "Plus",
    "Regex",
    "RegexSyntaxError",
    "Repeat",
    "Star",
    "Sym",
    "canonical",
    "chain_factor",
    "concat",
    "contract_stars",
    "counterexample",
    "disj",
    "enumerate_words",
    "expand_stars",
    "glushkov",
    "is_chare",
    "is_deterministic",
    "is_single_occurrence",
    "is_sore",
    "language_equivalent",
    "language_included",
    "matches",
    "matches_by_derivatives",
    "normalize",
    "parse_regex",
    "simplify",
    "sym",
    "syms",
    "syntactically_equal",
    "to_dtd_syntax",
    "to_paper_syntax",
]
