"""Generalized finite automata (GFAs) with SORE labels on the states.

Section 5 of the paper runs its rewrite system on automata whose states
carry regular expressions: a *generalized finite automaton* is an
``RE(Σ)``-labeled graph, and it is *single occurrence* when every label
is a SORE and every alphabet symbol occurs in at most one label.

The class here is a small mutable digraph with two distinguished
unlabeled endpoints (:data:`SOURCE` and :data:`SINK`) plus the
ε-closure of Section 5, which underlies the preconditions of the
``disjunction`` and ``optional`` rules:

* every node labelled ``s+`` or ``(s+)?`` has a closure self-edge;
* ``(r, r′)`` is a closure edge whenever some G-path from ``r`` to
  ``r′`` only crosses intermediate nodes with ε in their language.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from ..errors import UsageError
from ..obs.recorder import NULL_RECORDER, Recorder
from ..regex.ast import Opt, Plus, Regex, Sym
from ..regex.language import matches
from .soa import SOA

SOURCE = -1
SINK = -2


def _is_plus_like(label: Regex) -> bool:
    """Labels of the form ``s+`` or ``(s+)?`` get closure self-loops."""
    if isinstance(label, Plus):
        return True
    return isinstance(label, Opt) and isinstance(label.inner, Plus)


@dataclass(frozen=True, slots=True)
class Closure:
    """The ε-closure ``G*``: predecessor and successor sets per node.

    Sets may contain :data:`SOURCE` (in predecessors) and :data:`SINK`
    (in successors); the distinguished endpoints themselves also have
    entries.
    """

    pred: dict[int, frozenset[int]]
    succ: dict[int, frozenset[int]]


class GFA:
    """A mutable single occurrence GFA.

    Nodes are integer ids mapped to their :class:`Regex` labels; the
    unlabeled endpoints are the module constants ``SOURCE``/``SINK``.
    """

    def __init__(self) -> None:
        self.labels: dict[int, Regex] = {}
        self._out: dict[int, set[int]] = {SOURCE: set(), SINK: set()}
        self._in: dict[int, set[int]] = {SOURCE: set(), SINK: set()}
        self._next_id = 0
        #: Instrumentation sink; :func:`repro.core.rewrite.rewrite_gfa`
        #: attaches a live one so state merges are counted where they
        #: happen instead of being re-derived by every caller.
        self.recorder: Recorder = NULL_RECORDER

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_soa(cls, soa: SOA) -> "GFA":
        """Lift a SOA to a GFA with symbol labels (each SOA is a GFA).

        ``accepts_empty`` becomes a direct source→sink edge, which is
        how the paper's graph semantics expresses ε — the ``optional``
        rule consumes it when it makes the last mandatory part of the
        expression optional.
        """
        gfa = cls()
        by_symbol = {symbol: gfa.add_node(Sym(symbol)) for symbol in sorted(soa.symbols)}
        for symbol in soa.initial:
            gfa.add_edge(SOURCE, by_symbol[symbol])
        for symbol in soa.final:
            gfa.add_edge(by_symbol[symbol], SINK)
        for a, b in soa.edges:
            gfa.add_edge(by_symbol[a], by_symbol[b])
        if soa.accepts_empty:
            gfa.add_edge(SOURCE, SINK)
        return gfa

    def copy(self) -> "GFA":
        clone = GFA()
        clone.labels = dict(self.labels)
        clone._out = {node: set(succ) for node, succ in self._out.items()}
        clone._in = {node: set(pred) for node, pred in self._in.items()}
        clone._next_id = self._next_id
        clone.recorder = self.recorder
        return clone

    # -- mutation -------------------------------------------------------------

    def add_node(self, label: Regex) -> int:
        node = self._next_id
        self._next_id += 1
        self.labels[node] = label
        self._out[node] = set()
        self._in[node] = set()
        return node

    def remove_node(self, node: int) -> None:
        for successor in list(self._out[node]):
            self.remove_edge(node, successor)
        for predecessor in list(self._in[node]):
            self.remove_edge(predecessor, node)
        del self.labels[node]
        del self._out[node]
        del self._in[node]

    def add_edge(self, tail: int, head: int) -> None:
        self._check_endpoint(tail)
        self._check_endpoint(head)
        self._out[tail].add(head)
        self._in[head].add(tail)

    def remove_edge(self, tail: int, head: int) -> None:
        self._out[tail].discard(head)
        self._in[head].discard(tail)

    def relabel(self, node: int, label: Regex) -> None:
        if node in (SOURCE, SINK):
            raise UsageError("the source and sink carry no label")
        self.labels[node] = label

    def merge(self, nodes: Sequence[int], label: Regex) -> int:
        """Replace ``nodes`` by a single fresh node labelled ``label``.

        All edges incident to the merged nodes are redirected to the
        new node; edges *between* merged nodes (including self-loops)
        become a self-loop on the new node.  Returns the new node id.
        """
        merged = set(nodes)
        if self.recorder.enabled:
            self.recorder.count("soa.states_eliminated", len(merged) - 1)
        new_node = self.add_node(label)
        for node in nodes:
            for successor in list(self._out[node]):
                self.add_edge(
                    new_node, new_node if successor in merged else successor
                )
            for predecessor in list(self._in[node]):
                self.add_edge(
                    new_node if predecessor in merged else predecessor, new_node
                )
        for node in nodes:
            self.remove_node(node)
        return new_node

    def _check_endpoint(self, node: int) -> None:
        if node not in self._out:
            # lint: allow R002 — mapping-lookup protocol, callers catch KeyError
            raise KeyError(f"unknown node {node}")

    # -- structure ------------------------------------------------------------

    def nodes(self) -> list[int]:
        """Labelled nodes only (excludes source/sink)."""
        return list(self.labels)

    def has_edge(self, tail: int, head: int) -> bool:
        return head in self._out.get(tail, ())

    def successors(self, node: int) -> set[int]:
        return set(self._out[node])

    def predecessors(self, node: int) -> set[int]:
        return set(self._in[node])

    def edge_list(self) -> list[tuple[int, int]]:
        return [
            (tail, head) for tail, heads in self._out.items() for head in heads
        ]

    def is_final(self) -> bool:
        """One labelled node, connected exactly source → node → sink."""
        if len(self.labels) != 1:
            return False
        (node,) = self.labels
        return (
            self._out[SOURCE] == {node}
            and self._in[node] == {SOURCE}
            and self._out[node] == {SINK}
            and self._in[SINK] == {node}
        )

    def final_regex(self) -> Regex:
        if not self.is_final():
            raise UsageError("GFA is not final")
        (label,) = self.labels.values()
        return label

    def alphabet(self) -> set[str]:
        return {
            symbol for label in self.labels.values() for symbol in label.alphabet()
        }

    def is_single_occurrence(self) -> bool:
        seen: set[str] = set()
        for label in self.labels.values():
            for symbol, count in label.symbol_occurrences().items():
                if count != 1 or symbol in seen:
                    return False
                seen.add(symbol)
        return True

    # -- ε-closure (Section 5) -------------------------------------------------

    def closure(self) -> Closure:
        nullable = {
            node for node, label in self.labels.items() if label.nullable()
        }
        succ: dict[int, set[int]] = {}
        every_node = [SOURCE, SINK, *self.labels]
        for start in every_node:
            reachable: set[int] = set()
            frontier = list(self._out[start])
            visited_through: set[int] = set()
            while frontier:
                node = frontier.pop()
                if node not in reachable:
                    reachable.add(node)
                    if node in nullable and node not in visited_through:
                        visited_through.add(node)
                        frontier.extend(self._out[node])
            succ[start] = reachable
        for node, label in self.labels.items():
            if _is_plus_like(label):
                succ[node].add(node)
        pred: dict[int, set[int]] = {node: set() for node in every_node}
        for tail, heads in succ.items():
            for head in heads:
                pred[head].add(tail)
        return Closure(
            pred={node: frozenset(values) for node, values in pred.items()},
            succ={node: frozenset(values) for node, values in succ.items()},
        )

    # -- language ---------------------------------------------------------------

    def accepts(self, word: Sequence[str]) -> bool:
        """Membership by dynamic programming over (node, position) pairs.

        A configuration ``(v, i)`` means: some path from the source has
        just finished matching node ``v`` after consuming ``word[:i]``.
        Used in tests to check that rewriting preserves the language.
        """
        start: tuple[int, int] = (SOURCE, 0)
        seen = {start}
        frontier = [start]
        length = len(word)
        while frontier:
            node, index = frontier.pop()
            if index == length and self.has_edge(node, SINK):
                return True
            for successor in self._out[node]:
                if successor == SINK:
                    continue
                label = self.labels[successor]
                for end in range(index, length + 1):
                    if not matches(label, word[index:end]):
                        continue
                    state = (successor, end)
                    if state not in seen:
                        seen.add(state)
                        frontier.append(state)
        return False

    def __str__(self) -> str:
        def name(node: int) -> str:
            if node == SOURCE:
                return "src"
            if node == SINK:
                return "snk"
            return str(self.labels[node])

        edges = ", ".join(
            f"{name(tail)} -> {name(head)}" for tail, head in sorted(self.edge_list())
        )
        return f"GFA({edges})"
