"""Noise injection bookkeeping."""

import random

from repro.datagen.noise import inject_intruders, perturb


class TestIntruders:
    def test_rate_respected_roughly(self):
        rng = random.Random(0)
        words = [("a", "b")] * 1000
        noisy = inject_intruders(words, ["z"], rate=0.1, rng=rng)
        assert 0.06 < noisy.noise_rate < 0.14

    def test_corrupted_words_contain_an_intruder(self):
        rng = random.Random(1)
        words = [("a", "b")] * 100
        noisy = inject_intruders(words, ["z", "w"], rate=0.2, rng=rng)
        for index in noisy.corrupted_indexes:
            assert set(noisy.words[index]) & {"z", "w"}

    def test_untouched_words_identical(self):
        rng = random.Random(2)
        words = [("a", "b")] * 50
        noisy = inject_intruders(words, ["z"], rate=0.3, rng=rng)
        for index, word in enumerate(noisy.words):
            if index not in noisy.corrupted_indexes:
                assert word == ("a", "b")

    def test_zero_rate_changes_nothing(self):
        rng = random.Random(3)
        words = [("a",)] * 10
        noisy = inject_intruders(words, ["z"], rate=0.0, rng=rng)
        assert noisy.words == words
        assert noisy.noise_rate == 0.0


class TestPerturb:
    def test_corruption_changes_length(self):
        rng = random.Random(4)
        words = [("a", "b", "c")] * 200
        noisy = perturb(words, rate=0.5, rng=rng)
        for index in noisy.corrupted_indexes:
            assert len(noisy.words[index]) in (2, 4)

    def test_empty_words_skipped(self):
        rng = random.Random(5)
        noisy = perturb([()] * 10, rate=1.0, rng=rng)
        assert not noisy.corrupted_indexes

    def test_empty_corpus(self):
        noisy = perturb([], rate=0.5, rng=random.Random(0))
        assert noisy.noise_rate == 0.0
