"""Property-based end-to-end pipeline tests over *random DTDs*.

The strongest integration invariant the system offers: for any DTD,
documents generated from it validate against it, and a DTD inferred
from those documents validates them too — with the inferred content
models never larger than needed (iDTD output stays within the source
model whenever the source models are SOREs).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.inference import DTDInferencer
from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.regex.ast import Regex
from repro.regex.printer import to_dtd_syntax
from repro.xmlio.dtd import Dtd, Mixed, parse_dtd
from repro.xmlio.parser import parse_document
from repro.xmlio.validate import validate

from ..conftest import build_random_sore


@st.composite
def random_dtds(draw: st.DrawFn) -> Dtd:
    """A random non-recursive DTD: a root with SORE content over a few
    child elements, each child either text-only or EMPTY."""
    child_count = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    children = [f"c{i}" for i in range(child_count)]
    content: Regex = build_random_sore(rng, children)
    lines = [f"<!ELEMENT root ({to_dtd_syntax(content)})>"]
    for name in children:
        kind = rng.choice(["(#PCDATA)", "EMPTY"])
        lines.append(f"<!ELEMENT {name} {kind}>")
    return parse_dtd("\n".join(lines))


RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(random_dtds(), st.integers(min_value=0, max_value=2**31))
def test_generated_documents_validate_against_their_dtd(dtd, seed):
    generator = XmlGenerator(dtd, random.Random(seed))
    for document in generator.corpus(8):
        assert not validate(document, dtd)


@RELAXED
@given(random_dtds(), st.integers(min_value=0, max_value=2**31))
def test_serialisation_round_trip_preserves_validity(dtd, seed):
    generator = XmlGenerator(dtd, random.Random(seed))
    for document in generator.corpus(4):
        reparsed = parse_document(serialize(document))
        assert not validate(reparsed, dtd)


@RELAXED
@given(
    random_dtds(),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["idtd", "crx"]),
)
def test_inferred_dtd_validates_the_corpus(dtd, seed, method):
    generator = XmlGenerator(dtd, random.Random(seed))
    corpus = generator.corpus(25)
    learned = DTDInferencer(method=method).infer(corpus)
    for document in corpus:
        violations = validate(document, learned)
        assert not violations, violations


@RELAXED
@given(random_dtds(), st.integers(min_value=0, max_value=2**31))
def test_idtd_exact_on_representative_corpora(dtd, seed):
    """When the corpus is representative of a SORE source model, iDTD
    recovers *exactly* the source language (Theorem 1 end to end).
    Non-representative corpora may legitimately yield a repair-driven
    superset, so the exactness claim is conditional on coverage."""
    from repro.automata.soa import SOA
    from repro.learning.tinf import tinf
    from repro.regex.language import language_equivalent

    generator = XmlGenerator(dtd, random.Random(seed))
    corpus = generator.corpus(60)
    learned = DTDInferencer(method="idtd").infer(corpus)
    source_model = dtd.content_regex("root")
    learned_model = learned.content_regex("root")
    sequences = [document.root.child_names() for document in corpus]
    representative = tinf(sequences).language_equal(
        SOA.from_regex(source_model)
    )
    if learned_model is None:  # corpus had only empty roots
        assert source_model.nullable()
        return
    if representative:
        assert language_equivalent(learned_model, source_model)
    else:
        # at minimum, the corpus itself is always covered (Theorem 2)
        from repro.regex.language import matches

        assert all(matches(learned_model, word) for word in sequences)
