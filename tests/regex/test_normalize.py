"""Normal forms: the Claim 1 transformations, simplify laws, canonical."""

import pytest
from hypothesis import given, settings

from repro.regex.ast import Opt, Plus, Star, Sym
from repro.regex.language import language_equivalent
from repro.regex.normalize import (
    canonical,
    contract_repeats,
    contract_stars,
    expand_stars,
    normalize,
    simplify,
    syntactically_equal,
)
from repro.regex.parser import parse_regex
from repro.regex.printer import to_paper_syntax

from ..conftest import sores


class TestOperatorNormalForm:
    @pytest.mark.parametrize(
        "given_text,expected_text",
        [
            ("a??", "a?"),
            ("(a+)+", "a+"),
            ("(a*)*", "a*"),
            ("(a?)+", "a*"),
            ("(a+)?", "a*"),
            ("(a*)?", "a*"),
            ("(a?)*", "a*"),
            ("(a+)*", "a*"),
            ("(a*)+", "a*"),
            ("((a?)+)?", "a*"),
        ],
    )
    def test_normalize(self, given_text, expected_text):
        assert normalize(parse_regex(given_text)) == parse_regex(expected_text)

    def test_normalize_recurses(self):
        assert normalize(parse_regex("(b?? c)+ d")) == parse_regex("(b? c)+ d")

    def test_expand_and_contract_stars_are_inverse_on_star_forms(self):
        expression = parse_regex("a* (b c*)+")
        assert contract_stars(expand_stars(expression)) == expression

    def test_expand_stars_removes_all_stars(self):
        expanded = expand_stars(parse_regex("a* (b c*)+"))
        assert not any(isinstance(node, Star) for node in expanded.walk())


class TestSimplify:
    @pytest.mark.parametrize(
        "given_text,expected_text",
        [
            ("(a? + b)", "(a + b)?"),
            ("(a+ + b)+", "(a + b)+"),
            ("(a* + b)+", "(a + b)*"),
            ("(a+ + b + c+)+", "(a + b + c)+"),
            ("(a? + b+)+", "(a + b)*"),
            ("((a+ + c + e)+ + d+)+", "(a + c + e + d)+"),
        ],
    )
    def test_simplify(self, given_text, expected_text):
        assert simplify(parse_regex(given_text)) == parse_regex(expected_text)

    def test_simplify_leaves_plain_disjunction_alone(self):
        # (a+ + b) is NOT (a + b): simplification only under +/*.
        expression = parse_regex("a+ + b")
        assert simplify(expression) == expression

    @settings(max_examples=60, deadline=None)
    @given(sores())
    def test_simplify_preserves_language(self, expression):
        assert language_equivalent(simplify(expression), expression)

    @settings(max_examples=60, deadline=None)
    @given(sores())
    def test_normalize_preserves_language(self, expression):
        assert language_equivalent(normalize(expression), expression)


class TestCanonical:
    def test_commutative_equality(self):
        assert syntactically_equal(
            parse_regex("(a|b|c) d"), parse_regex("(c|a|b) d")
        )

    def test_distinguishes_different_structures(self):
        assert not syntactically_equal(parse_regex("a b"), parse_regex("b a"))
        assert not syntactically_equal(parse_regex("a?"), parse_regex("a"))

    def test_canonical_is_idempotent(self):
        expression = parse_regex("((c|a)+ b?)+")
        assert canonical(canonical(expression)) == canonical(expression)

    def test_canonical_sorts_nested_disjunctions(self):
        left = canonical(parse_regex("(b|a) (d|c)?"))
        right = canonical(parse_regex("(a|b) (c|d)?"))
        assert left == right


class TestContractRepeats:
    """Adjacent same-symbol factor runs collapse into counted factors.

    ``contract_repeats`` only fires when every factor's count set is a
    contiguous interval *and* the concatenation of those intervals is
    again an interval — otherwise rewriting would change the language.
    """

    @pytest.mark.parametrize(
        ("before", "after"),
        [
            ("a a? a? b", "a{1,3} b"),
            ("a a+", "a{2,}"),
            ("a a*", "a+"),
            ("a a", "a{2,2}"),
            ("a? a?", "a{0,2}"),
            ("a* a*", "a*"),
            ("b a a? c", "b a{1,2} c"),
        ],
    )
    def test_contractions(self, before, after):
        contracted = contract_repeats(parse_regex(before))
        assert to_paper_syntax(contracted) == after
        assert language_equivalent(contracted, parse_regex(before))

    @pytest.mark.parametrize(
        "text",
        [
            "a b a",  # different symbols between the run
            "a (a + b)",  # factor is not a pure same-symbol interval
            "a? b?",  # runs of length one are left untouched
        ],
    )
    def test_non_contractible_left_alone(self, text):
        expression = parse_regex(text)
        assert contract_repeats(expression) == expression

    def test_single_factor_runs_never_rewritten(self):
        # Opt(Plus(a)) is interval-shaped, but a run of one factor must
        # not be restyled (a+? is not made a*): only genuine runs fuse.
        expression = Opt(Plus(Sym("a")))
        assert contract_repeats(expression) == expression

    def test_recurses_below_the_surface(self):
        contracted = contract_repeats(parse_regex("(a a? + b) c"))
        assert to_paper_syntax(contracted) == "(a{1,2} + b) c"

    @settings(max_examples=60, deadline=None)
    @given(sores())
    def test_language_preserved_on_random_sores(self, expression):
        assert language_equivalent(contract_repeats(expression), expression)
