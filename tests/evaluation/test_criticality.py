"""The Figure 4 protocol: success curves and critical sizes."""

import random

from repro.datagen.strings import padded_sample
from repro.evaluation.criticality import (
    SuccessCurve,
    CurvePoint,
    figure4_panel,
    learner_reference,
    success_curve,
)
from repro.regex.parser import parse_regex


def small_panel_sample(rng):
    target = parse_regex("(a1 (a2 + a3 + a4)+ (a5 + a6))+")  # mini-(‡)
    return padded_sample(target, 150, rng)


class TestSuccessCurve:
    def test_monotone_trend_and_saturation(self):
        rng = random.Random(17)
        sample = small_panel_sample(rng)
        curve = success_curve(
            "crx", sample, sizes=[6, 20, 60, 150], trials=15, rng=rng
        )
        fractions = [point.fraction for point in curve.points]
        # at full size the reference is recovered by construction
        assert fractions[-1] == 1.0
        # broadly increasing (allow small non-monotonicity from sampling)
        assert fractions[0] <= fractions[-1]

    def test_critical_size(self):
        curve = SuccessCurve(
            learner="crx",
            reference=parse_regex("a"),
            points=[
                CurvePoint(10, 5, 10),
                CurvePoint(20, 10, 10),
                CurvePoint(30, 10, 10),
            ],
        )
        assert curve.critical_size() == 20

    def test_critical_size_requires_sustained_success(self):
        curve = SuccessCurve(
            learner="crx",
            reference=parse_regex("a"),
            points=[
                CurvePoint(10, 10, 10),
                CurvePoint(20, 9, 10),
                CurvePoint(30, 10, 10),
            ],
        )
        assert curve.critical_size() == 30

    def test_no_critical_size(self):
        curve = SuccessCurve(
            learner="crx",
            reference=parse_regex("a"),
            points=[CurvePoint(10, 3, 10)],
        )
        assert curve.critical_size() is None


class TestPanel:
    def test_crx_generalizes_faster_than_idtd_and_rewrite(self):
        """The headline of Figure 4: crx ≤ idtd ≤ rewrite in data needs."""
        rng = random.Random(99)
        sample = small_panel_sample(rng)
        curves = figure4_panel(
            sample, sizes=[10, 40, 150], trials=12, rng=rng
        )
        at_small = {
            name: curve.points[0].fraction for name, curve in curves.items()
        }
        at_mid = {
            name: curve.points[1].fraction for name, curve in curves.items()
        }
        # crx should dominate rewrite at small and mid sizes
        assert at_small["crx"] >= at_small["rewrite"]
        assert at_mid["crx"] >= at_mid["rewrite"]
        # and idtd should sit at or above rewrite (repairs help)
        assert at_mid["idtd"] >= at_mid["rewrite"]

    def test_reference_expressions_differ_by_learner(self):
        rng = random.Random(5)
        sample = small_panel_sample(rng)
        crx_ref = learner_reference("crx", sample)
        idtd_ref = learner_reference("idtd", sample)
        from repro.regex.classify import is_chare, is_sore

        assert is_chare(crx_ref)
        assert is_sore(idtd_ref)
