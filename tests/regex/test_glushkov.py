"""Glushkov construction: first/last/follow sets and derived notions."""

from hypothesis import given, settings

from repro.regex.glushkov import glushkov
from repro.regex.parser import parse_regex

from ..conftest import sores


class TestConstruction:
    def test_positions_count_symbol_occurrences(self):
        automaton = glushkov(parse_regex("a (a + b)*"))
        assert sorted(automaton.labels) == ["a", "a", "b"]

    def test_first_and_last_symbols(self):
        automaton = glushkov(parse_regex("(a + b)? c d*"))
        assert automaton.first_symbols() == {"a", "b", "c"}
        assert automaton.last_symbols() == {"c", "d"}

    def test_two_grams_of_paper_expression(self):
        # (a + b)+c has 2-grams {ab, aa, ba, bb, ac, bc} (Section 4).
        automaton = glushkov(parse_regex("(a + b)+ c"))
        assert automaton.two_grams() == {
            ("a", "a"),
            ("a", "b"),
            ("b", "a"),
            ("b", "b"),
            ("a", "c"),
            ("b", "c"),
        }

    def test_nullable_flag(self):
        assert glushkov(parse_regex("a?")).nullable
        assert not glushkov(parse_regex("a")).nullable

    def test_repeat_desugaring(self):
        automaton = glushkov(parse_regex("a{2,3}"))
        assert not automaton.accepts(("a",))
        assert automaton.accepts(("a", "a"))
        assert automaton.accepts(("a", "a", "a"))
        assert not automaton.accepts(("a", "a", "a", "a"))

    def test_repeat_unbounded(self):
        automaton = glushkov(parse_regex("a{2,}"))
        assert not automaton.accepts(("a",))
        assert automaton.accepts(tuple("a" * 7))


class TestAcceptance:
    def test_accepts_examples(self):
        automaton = glushkov(parse_regex("((b? (a + c))+ d)+ e"))
        for word in ["bacacdacde", "cbacdbacde", "abccaadcde", "ade"]:
            assert automaton.accepts(tuple(word)), word
        for word in ["", "e", "ae", "adde"]:
            assert not automaton.accepts(tuple(word)), word


class TestSingleOccurrence:
    @settings(max_examples=40, deadline=None)
    @given(sores())
    def test_sores_give_single_occurrence_automata(self, expression):
        assert glushkov(expression).single_occurrence()

    def test_repeated_symbols_break_single_occurrence(self):
        assert not glushkov(parse_regex("a b a")).single_occurrence()


class TestDeterminismCriterion:
    def test_deterministic(self):
        assert glushkov(parse_regex("a (b + c)")).is_deterministic()

    def test_nondeterministic_firsts(self):
        assert not glushkov(parse_regex("(a b) + (a c)")).is_deterministic()

    def test_nondeterministic_follows(self):
        assert not glushkov(parse_regex("(a + b)* a")).is_deterministic()
