"""Map-reduce DTD inference over corpus shards (Section 9, scaled out).

Both learners keep internal state that is tiny compared to the corpus
(the SOA triple for iDTD; the arrow relation plus occurrence profiles
for CRX) and that state merges associatively.  That makes inference
embarrassingly data-parallel:

* **map** — each worker parses its shard of document *paths* and folds
  them into a :class:`~repro.xmlio.extract.StreamingEvidence` (constant
  memory in shard size; only file paths cross the process boundary on
  the way in, only learner states on the way out);
* **reduce** — shard states merge in shard order, which reproduces the
  batch evidence exactly (including the bounded text/attribute
  reservoirs, because shards are contiguous chunks of the corpus);
* **finalize** — one :class:`~repro.core.inference.DTDInferencer` pass
  over the merged states.

The result is byte-identical to batch inference on the same corpus —
property-tested in ``tests/runtime/test_parallel.py``.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..core.inference import DTDInferencer, Method
from ..xmlio.dtd import Dtd
from ..xmlio.extract import StreamingEvidence
from ..xmlio.parser import parse_files

Backend = str  # "process" | "thread" | "serial"


def shard_paths(paths: Sequence[str], shards: int) -> list[list[str]]:
    """Split ``paths`` into at most ``shards`` contiguous chunks.

    Chunks are contiguous (not round-robin) and returned in corpus
    order so that merging shard evidence left-to-right visits values in
    the same order as a sequential pass — the property that keeps the
    capped text/attribute reservoirs identical to the batch path.
    """
    paths = list(paths)
    if not paths:
        return []
    shards = max(1, min(shards, len(paths)))
    base, extra = divmod(len(paths), shards)
    chunks: list[list[str]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(paths[start : start + size])
        start += size
    return chunks


def extract_from_paths(paths: Iterable[str]) -> StreamingEvidence:
    """The map step: parse each file and fold it into streaming state.

    Documents are parsed one at a time and released immediately; the
    worker's footprint is one document plus the learner states.
    """
    evidence = StreamingEvidence()
    for document in parse_files(paths):
        evidence.add_document(document)
    return evidence


def merge_evidence(parts: Iterable[StreamingEvidence]) -> StreamingEvidence:
    """The reduce step: fold shard evidence together, left to right."""
    merged = StreamingEvidence()
    for part in parts:
        merged.merge(part)
    return merged


def parallel_evidence(
    paths: Sequence[str],
    jobs: int | None = None,
    backend: Backend = "process",
    executor: Executor | None = None,
) -> StreamingEvidence:
    """Extract streaming evidence from ``paths`` using ``jobs`` workers.

    ``jobs=None`` uses the CPU count; ``jobs<=1`` (or a single file, or
    ``backend="serial"``) runs in-process without an executor.  A
    caller-supplied ``executor`` overrides backend selection — useful
    for reusing a warm pool across corpora.
    """
    paths = list(paths)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if executor is None and (
        jobs <= 1 or len(paths) <= 1 or backend == "serial"
    ):
        return extract_from_paths(paths)
    shards = shard_paths(paths, jobs)
    if executor is not None:
        return merge_evidence(executor.map(extract_from_paths, shards))
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    with pool_cls(max_workers=len(shards)) as pool:
        # Executor.map preserves input order, so the reduce sees shards
        # in corpus order regardless of completion order.
        return merge_evidence(pool.map(extract_from_paths, shards))


def infer_parallel(
    paths: Sequence[str],
    jobs: int | None = None,
    method: Method = "auto",
    backend: Backend = "process",
    executor: Executor | None = None,
    inferencer: DTDInferencer | None = None,
) -> Dtd:
    """Sharded map-reduce DTD inference over XML files.

    Produces the same DTD as ``DTDInferencer.infer`` over the parsed
    corpus, with peak memory bounded by learner-state size and
    wall-clock divided across ``jobs`` workers.
    """
    if inferencer is None:
        inferencer = DTDInferencer(method=method)
    evidence = parallel_evidence(
        paths, jobs=jobs, backend=backend, executor=executor
    )
    return inferencer.infer_from_streaming(evidence)
