"""iDTD (Section 6): Theorem 2, the Figure 2 recovery, table fidelity."""

import random

import pytest
from hypothesis import given, settings

from repro.automata.compare import soa_included_in_regex
from repro.automata.soa import SOA
from repro.core.idtd import idtd, idtd_from_soa
from repro.learning.tinf import tinf
from repro.regex.classify import is_sore
from repro.regex.normalize import syntactically_equal
from repro.regex.parser import parse_regex
from repro.regex.printer import to_paper_syntax

from ..conftest import word_samples


class TestFigure2:
    def test_recovers_intended_expression(self):
        """'iDTD still succeeds in deriving ((b?(a+c))+d)+e' (Section 1.3)."""
        words = [tuple(w) for w in ["bacacdacde", "cbacdbacde"]]
        result = idtd_from_soa(tinf(words))
        assert to_paper_syntax(result.regex) == "((b? (a + c))+ d)+ e"
        assert result.repaired

    def test_no_repair_on_representative_sample(self):
        words = [tuple(w) for w in ["bacacdacde", "cbacdbacde", "abccaadcde"]]
        result = idtd_from_soa(tinf(words))
        assert not result.repaired


class TestTheorem2:
    """iDTD always produces a SORE r with L(A) ⊆ L(r)."""

    @settings(max_examples=60, deadline=None)
    @given(word_samples())
    def test_superset_and_sore(self, words):
        if not any(words):
            return
        soa = tinf(words)
        result = idtd_from_soa(soa)
        assert is_sore(result.regex)
        assert soa_included_in_regex(soa, result.regex)

    @settings(max_examples=60, deadline=None)
    @given(word_samples())
    def test_every_sample_word_accepted(self, words):
        if not any(words):
            return
        from repro.regex.language import matches

        regex = idtd(words)
        for word in words:
            assert matches(regex, word), (word, to_paper_syntax(regex))


class TestConvenienceWrapper:
    def test_empty_words_make_result_nullable(self):
        regex = idtd([(), ("a",), ("b",), ("a", "b")])
        assert regex.nullable()
        assert syntactically_equal(regex, parse_regex("a? b?"))

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            idtd([(), ()])

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            idtd([])


class TestEscalation:
    def test_k_escalates_beyond_default(self):
        """A sample needing looser repairs than k=2 still converges."""
        rng = random.Random(99)
        alphabet = [f"s{i}" for i in range(8)]
        words = [
            tuple(rng.choice(alphabet) for _ in range(rng.randint(1, 10)))
            for _ in range(6)
        ]
        result = idtd_from_soa(tinf(words), k=1)
        assert is_sore(result.regex)

    def test_single_symbol(self):
        assert idtd([("a",)]) == parse_regex("a")
        assert syntactically_equal(idtd([("a",), ("a", "a")]), parse_regex("a+"))

    def test_rejects_empty_soa(self):
        with pytest.raises(ValueError):
            idtd_from_soa(SOA())


class TestSparseRecovery:
    """iDTD needs fewer strings than a representative sample (Figure 4)."""

    def test_star_disjunction_with_missing_grams(self):
        """Section 7's point: (a1+...+an)* needs ~n² grams for rewrite,
        but iDTD repairs recover it from a linear-sized witness set."""
        # cycle cover only: a->b, b->c, c->a, plus entry/exit evidence
        words = [tuple(w) for w in ["abd", "bcd", "cad", "aad", "d"]]
        regex = idtd(words)
        assert is_sore(regex)
        from repro.regex.language import language_equivalent, matches

        for word in words:
            assert matches(regex, word)
        assert language_equivalent(regex, parse_regex("(a + b + c)* d"))
