"""XSD generation with numerical predicates and datatype sniffing.

Section 9: 85% of real XSDs are structurally equivalent to DTDs, so an
inferred DTD converts to an XSD by "using the correct syntax"; on top
of that we tighten +/* into minOccurs/maxOccurs from the observed
occurrence counts and sniff built-in datatypes (dates, integers, ...)
from the text content.

Run:  python examples/xsd_generation.py
"""

import random

from repro.api import InferenceConfig, infer
from repro.datagen import XmlGenerator
from repro.xmlio import parse_dtd

SOURCE = parse_dtd(
    """
    <!ELEMENT season (team+)>
    <!ELEMENT team (name, founded, player, player, player+, coach)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT founded (#PCDATA)>
    <!ELEMENT player (#PCDATA)>
    <!ELEMENT coach (#PCDATA)>
    """
)

rng = random.Random(11)
generator = XmlGenerator(
    SOURCE,
    rng,
    text_makers={
        "founded": lambda r: str(r.randint(1890, 1995)),
        "player": lambda r: f"player-{r.randint(1, 999)}",
    },
    # squads have 11+ players: make repetitions long so the numerical
    # post-processing has something to find
    repeat_continue=0.93,
)
corpus = generator.corpus(60)

result = infer(corpus, config=InferenceConfig(method="idtd", numeric=True))

print("inferred DTD (with numerical predicates):")
print(result.render())

print("sniffed datatypes:", result.report.text_types)

print("\ngenerated XSD:")
print(result.to_xsd())
