"""Seeded repeated-symbol and shuffled corpus generators."""

from __future__ import annotations

import random

import pytest

from repro.datagen.occurrences import (
    fuzz_corpus,
    repeated_symbol_corpus,
    repeated_symbol_target,
    shuffled_corpus,
    shuffled_target,
)
from repro.datagen.strings import riffle
from repro.errors import UsageError
from repro.regex.ast import Inter
from repro.regex.language import matches
from repro.regex.printer import to_paper_syntax


class TestRiffle:
    def test_preserves_each_streams_order(self):
        rng = random.Random(0)
        for _ in range(20):
            merged = riffle([["a1", "a2", "a3"], ["b1", "b2"]], rng)
            assert [s for s in merged if s.startswith("a")] == ["a1", "a2", "a3"]
            assert [s for s in merged if s.startswith("b")] == ["b1", "b2"]

    def test_empty_streams_dropped(self):
        assert riffle([[], ["a"], []], random.Random(1)) == ["a"]

    def test_eventually_produces_every_interleaving(self):
        rng = random.Random(2)
        produced = {tuple(riffle([["a"], ["b"]], rng)) for _ in range(50)}
        assert produced == {("a", "b"), ("b", "a")}


class TestRepeatedSymbolTargets:
    def test_per_gap_separators(self):
        target = repeated_symbol_target(("a", "b", "c"), k=3)
        assert to_paper_syntax(target) == "a b? a c? a"

    def test_anchor_alone(self):
        assert to_paper_syntax(repeated_symbol_target(("a",), k=3)) == "a a a"

    def test_separators_run_out_gracefully(self):
        assert (
            to_paper_syntax(repeated_symbol_target(("a", "b"), k=4))
            == "a b? a a a"
        )

    def test_rejects_k_below_two(self):
        with pytest.raises(UsageError):
            repeated_symbol_target(("a",), k=1)

    def test_rejects_empty_alphabet(self):
        with pytest.raises(UsageError):
            repeated_symbol_target((), k=2)


class TestRepeatedSymbolCorpora:
    def test_every_word_in_the_target_language(self):
        target, words = repeated_symbol_corpus(
            ("a", "b", "c"), 40, random.Random(9), k=3
        )
        assert len(words) >= 40
        assert all(matches(target, word) for word in words)

    def test_anchor_repeats_k_times_somewhere(self):
        _, words = repeated_symbol_corpus(("a", "b"), 30, random.Random(9), k=3)
        assert any(word.count("a") == 3 for word in words)

    def test_seeded_reproducibility(self):
        first = repeated_symbol_corpus(("a", "b"), 30, random.Random(4), k=2)
        second = repeated_symbol_corpus(("a", "b"), 30, random.Random(4), k=2)
        assert first == second


class TestShuffledCorpora:
    def test_target_is_an_interleaving(self):
        target = shuffled_target(("a b?", "c", "d+"))
        assert isinstance(target, Inter)

    def test_single_block_collapses(self):
        assert to_paper_syntax(shuffled_target(("a b",))) == "a b"

    def test_rejects_overlapping_block_alphabets(self):
        with pytest.raises(UsageError):
            shuffled_target(("a b", "b c"))

    def test_rejects_zero_blocks(self):
        with pytest.raises(UsageError):
            shuffled_target(())

    def test_every_word_in_the_target_language(self):
        target, words = shuffled_corpus(
            ("a b?", "c", "d+"), 40, random.Random(13)
        )
        assert len(words) >= 40
        assert all(matches(target, word) for word in words)

    def test_both_orders_witnessed_for_every_cross_block_pair(self):
        _, words = shuffled_corpus(("a", "b", "c"), 10, random.Random(13))
        for first, second in (("a", "b"), ("a", "c"), ("b", "c")):
            assert any(
                word.index(first) < word.index(second)
                for word in words
                if first in word and second in word
            )
            assert any(
                word.index(second) < word.index(first)
                for word in words
                if first in word and second in word
            )

    def test_seeded_reproducibility(self):
        first = shuffled_corpus(("a b?", "c"), 25, random.Random(6))
        second = shuffled_corpus(("a b?", "c"), 25, random.Random(6))
        assert first == second


class TestFuzzCorpus:
    def test_seeded_reproducibility(self):
        assert fuzz_corpus(random.Random(42)) == fuzz_corpus(random.Random(42))

    def test_shapes_all_reachable(self):
        shapes = {fuzz_corpus(random.Random(seed))[0] for seed in range(40)}
        assert shapes == {"repeated", "shuffled", "mixed"}

    def test_words_are_tuples_of_names(self):
        _, words = fuzz_corpus(random.Random(8))
        assert words
        assert all(
            isinstance(word, tuple)
            and all(isinstance(symbol, str) for symbol in word)
            for word in words
        )
