"""Language comparisons across representations (SOA vs RE).

A SOA is deterministic when read as an acceptor — the state after a
prefix is just its last symbol — so comparing it against a regular
expression is a product breadth-first search between that DFA and the
on-the-fly subset construction of the expression's Glushkov automaton.

These checks are exact and power both the test suite (e.g. Theorem 2's
``L(A) ⊆ L(iDTD(A))``) and the evaluation metrics.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from ..regex.ast import Regex
from ..regex.glushkov import glushkov
from ..regex.language import _accepting, _step
from .soa import SOA

# DFA view of a SOA: None = start state, "" = dead state, else a symbol.
_DEAD = ""


def _soa_step(soa: SOA, state: str | None, symbol: str) -> str | None:
    if state == _DEAD:
        return _DEAD
    if state is None:
        return symbol if symbol in soa.initial else _DEAD
    return symbol if (state, symbol) in soa.edges else _DEAD


def _soa_accepting(soa: SOA, state: str | None) -> bool:
    if state == _DEAD:
        return False
    if state is None:
        return soa.accepts_empty
    return state in soa.final


def soa_vs_regex_counterexample(
    soa: SOA, regex: Regex, alphabet: Iterable[str] | None = None
) -> tuple[str, ...] | None:
    """A shortest word in ``L(soa) \\ L(regex)``, or ``None`` if included."""
    automaton = glushkov(regex)
    symbols = sorted(set(alphabet) if alphabet is not None else soa.symbols)
    start = (None, None)
    seen = {start}
    queue: deque[tuple[str | None, object, tuple[str, ...]]] = deque(
        [(None, None, ())]
    )
    while queue:
        soa_state, re_state, word = queue.popleft()
        if _soa_accepting(soa, soa_state) and not _accepting(automaton, re_state):
            return word
        for symbol in symbols:
            next_soa = _soa_step(soa, soa_state, symbol)
            if next_soa == _DEAD:
                continue
            next_re = _step(automaton, re_state, symbol)
            key = (next_soa, next_re)
            if key not in seen:
                seen.add(key)
                queue.append((next_soa, next_re, word + (symbol,)))
    return None


def regex_vs_soa_counterexample(
    regex: Regex, soa: SOA
) -> tuple[str, ...] | None:
    """A shortest word in ``L(regex) \\ L(soa)``, or ``None`` if included."""
    automaton = glushkov(regex)
    symbols = sorted(set(automaton.labels))
    start = (None, None)
    seen = {start}
    queue: deque[tuple[object, str | None, tuple[str, ...]]] = deque(
        [(None, None, ())]
    )
    while queue:
        re_state, soa_state, word = queue.popleft()
        if _accepting(automaton, re_state) and not _soa_accepting(soa, soa_state):
            return word
        for symbol in symbols:
            next_re = _step(automaton, re_state, symbol)
            if re_state is not None and not next_re:
                continue
            if re_state is None and not next_re:
                continue
            next_soa = _soa_step(soa, soa_state, symbol)
            key = (next_re, next_soa)
            if key not in seen:
                seen.add(key)
                queue.append((next_re, next_soa, word + (symbol,)))
    return None


def soa_included_in_regex(soa: SOA, regex: Regex) -> bool:
    """``L(soa) ⊆ L(regex)``."""
    return soa_vs_regex_counterexample(soa, regex) is None


def regex_included_in_soa(regex: Regex, soa: SOA) -> bool:
    """``L(regex) ⊆ L(soa)``."""
    return regex_vs_soa_counterexample(regex, soa) is None


def soa_equivalent_to_regex(soa: SOA, regex: Regex) -> bool:
    """``L(soa) = L(regex)``."""
    return soa_included_in_regex(soa, regex) and regex_included_in_soa(regex, soa)
