"""Incremental inference over a stream of arriving XML data (Section 9).

When data trickles in over time, the schema should be maintainable
without re-reading old documents.  Both learners keep a small internal
representation — the SOA for iDTD, the sibling pre-order plus counters
for CRX — that new words fold into; the XML itself can be discarded.

Run:  python examples/incremental_stream.py
"""

import random

from repro import IncrementalSOA, to_paper_syntax
from repro.datagen.strings import sample_words
from repro.regex.parser import parse_regex

TRUE_SCHEMA = parse_regex("header (entry + comment)* footer?")
rng = random.Random(99)

learner = IncrementalSOA()
stream = sample_words(TRUE_SCHEMA, 400, rng)

print("streaming 400 words, re-deriving only when evidence changes:\n")
derivations = 0
for index, word in enumerate(stream, start=1):
    changed = learner.add(word)
    if changed:
        derivations += 1
        current = learner.infer()
        print(
            f"  word {index:>3}  new evidence -> "
            f"{to_paper_syntax(current)}"
        )

print(f"\n{derivations} derivations for 400 arriving words.")
print("final schema:", to_paper_syntax(learner.infer()))
print(
    "retained state: "
    f"{len(learner.soa.symbols)} states, {len(learner.soa.edges)} edges "
    "(independent of how much data has streamed past)"
)
