"""Unit tests for the regular expression AST and smart constructors."""

import pytest

from repro.regex.ast import (
    Concat,
    Disj,
    Opt,
    Plus,
    Repeat,
    Star,
    Sym,
    chain_factor,
    concat,
    disj,
    sym,
    syms,
)


class TestConstructors:
    def test_sym_requires_name(self):
        with pytest.raises(ValueError):
            Sym("")

    def test_concat_flattens_nested(self):
        expression = concat(concat(Sym("a"), Sym("b")), Sym("c"))
        assert expression == Concat((Sym("a"), Sym("b"), Sym("c")))

    def test_concat_of_one_is_identity(self):
        assert concat(Sym("a")) == Sym("a")

    def test_concat_of_zero_rejected(self):
        with pytest.raises(ValueError):
            concat()

    def test_disj_flattens_and_deduplicates(self):
        expression = disj(disj(Sym("a"), Sym("b")), Sym("a"), Sym("c"))
        assert expression == Disj((Sym("a"), Sym("b"), Sym("c")))

    def test_disj_of_one_is_identity(self):
        assert disj(Sym("a"), Sym("a")) == Sym("a")

    def test_concat_class_rejects_single_part(self):
        with pytest.raises(ValueError):
            Concat((Sym("a"),))

    def test_disj_class_rejects_single_option(self):
        with pytest.raises(ValueError):
            Disj((Sym("a"),))

    def test_chain_factor_quantifiers(self):
        assert chain_factor(["a"], "") == Sym("a")
        assert chain_factor(["a", "b"], "?") == Opt(Disj((Sym("a"), Sym("b"))))
        assert chain_factor(["a"], "+") == Plus(Sym("a"))
        assert chain_factor(["a"], "*") == Star(Sym("a"))
        with pytest.raises(ValueError):
            chain_factor(["a"], "!")

    def test_syms_builds_symbol_list(self):
        assert syms(["a", "b"]) == [Sym("a"), Sym("b")]
        assert sym("a") == Sym("a")


class TestRepeatValidation:
    def test_negative_low_rejected(self):
        with pytest.raises(ValueError):
            Repeat(Sym("a"), -1, 2)

    def test_high_below_low_rejected(self):
        with pytest.raises(ValueError):
            Repeat(Sym("a"), 3, 2)

    def test_zero_zero_rejected(self):
        with pytest.raises(ValueError):
            Repeat(Sym("a"), 0, 0)

    def test_unbounded_high_allowed(self):
        assert Repeat(Sym("a"), 2, None).nullable() is False
        assert Repeat(Sym("a"), 0, None).nullable() is True


class TestNullable:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            (Sym("a"), False),
            (Opt(Sym("a")), True),
            (Plus(Sym("a")), False),
            (Star(Sym("a")), True),
            (concat(Opt(Sym("a")), Opt(Sym("b"))), True),
            (concat(Opt(Sym("a")), Sym("b")), False),
            (disj(Sym("a"), Opt(Sym("b"))), True),
            (disj(Sym("a"), Sym("b")), False),
            (Plus(Opt(Sym("a"))), True),
        ],
    )
    def test_nullable(self, expression, expected):
        assert expression.nullable() is expected


class TestQueries:
    def test_alphabet(self):
        expression = concat(Sym("a"), disj(Sym("b"), Plus(Sym("c"))))
        assert expression.alphabet() == {"a", "b", "c"}

    def test_symbol_occurrences_counts_repeats(self):
        expression = concat(Sym("a"), Star(disj(Sym("a"), Sym("b"))))
        assert expression.symbol_occurrences() == {"a": 2, "b": 1}

    def test_token_count_matches_paper_example(self):
        # ((b?(a+c))+d)+e: 5 symbols, ?, +, +, two binary + joints... the
        # paper counts "tokens"; our measure: 5 syms + 3 unary + 1 disj
        # joint + 3 concat joints = 12.
        from repro.regex.parser import parse_regex

        assert parse_regex("((b? (a + c))+ d)+ e").token_count() == 12

    def test_walk_preorder(self):
        expression = concat(Sym("a"), Opt(Sym("b")))
        kinds = [type(node).__name__ for node in expression.walk()]
        assert kinds == ["Concat", "Sym", "Opt", "Sym"]

    def test_combinators(self):
        assert Sym("a").opt() == Opt(Sym("a"))
        assert Sym("a").plus() == Plus(Sym("a"))
        assert Sym("a").star() == Star(Sym("a"))
