"""Sparse data: inferring a schema from a handful of web-service replies.

Section 1.2's first regime: XML arriving as answers to queries or
web-service requests is scarce — a learner must generalise rather than
memorise.  CRX is designed for exactly this; iDTD, aimed at abundant
data, stays closer to the sample.

We simulate a currency-quote service that has answered only five
requests so far, infer a DTD from those five replies, and show that it
already accepts a sixth, structurally new reply.

Run:  python examples/web_service_inference.py
"""

from repro import matches, parse_document, to_paper_syntax
from repro.api import InferenceConfig, infer
from repro.xmlio import Children, validate

REPLIES = [
    "<quote><base>EUR</base><rate>1.27</rate><rate>1.31</rate></quote>",
    "<quote><base>USD</base><rate>0.79</rate></quote>",
    "<quote><base>JPY</base><error>unavailable</error></quote>",
    "<quote><base>GBP</base><rate>1.48</rate><rate>1.47</rate>"
    "<rate>1.49</rate></quote>",
    "<quote><base>CHF</base><error>throttled</error></quote>",
]

documents = [parse_document(text) for text in REPLIES]

# method="crx" forces the sparse-regime learner (method="auto" would
# pick it here anyway, since the corpus is tiny).
dtd = infer(documents, config=InferenceConfig(method="crx")).dtd

print("DTD inferred from 5 replies:")
print(dtd.render())

quote_model = dtd.elements["quote"]
assert isinstance(quote_model, Children)
print("quote content model:", to_paper_syntax(quote_model.regex))

# A reply shape never seen before: an error AFTER successful rates
# (CRX generalised rate*/error? into a chain that admits it).
unseen = parse_document(
    "<quote><base>NOK</base><rate>0.15</rate><error>stale</error></quote>"
)
violations = validate(unseen, dtd)
print(
    "\nunseen reply with rates AND a trailing error:",
    "accepted" if not violations else f"rejected ({violations[0]})",
)

# Membership at the expression level, for the curious:
print(
    "child sequence (base, rate, error) in the learned model:",
    matches(quote_model.regex, ("base", "rate", "error")),
)
