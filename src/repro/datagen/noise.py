"""Noise injection for the Section 9 experiments.

The paper's XHTML study found a dozen disallowed element names inside
``<p>`` content, each in a handful of the 30 000+ occurrences.  To
reproduce that scenario we corrupt a clean sample with low-rate
intruder symbols and random edits, with exact bookkeeping of which
words were touched so precision/recall of the denoisers can be
measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Sequence

Word = tuple[str, ...]


@dataclass
class NoisyCorpus:
    """A corrupted sample plus ground truth about the corruption."""

    words: list[Word]
    corrupted_indexes: set[int]
    intruder_symbols: tuple[str, ...]

    @property
    def noise_rate(self) -> float:
        if not self.words:
            return 0.0
        return len(self.corrupted_indexes) / len(self.words)


def inject_intruders(
    words: Sequence[Word],
    intruders: Sequence[str],
    rate: float,
    rng: random.Random,
) -> NoisyCorpus:
    """Insert intruder symbols into a fraction ``rate`` of the words.

    Mirrors the XHTML scenario: a foreign element (``table`` inside a
    paragraph) shows up at a random position in a few words.
    """
    corrupted: list[Word] = []
    touched: set[int] = set()
    for index, word in enumerate(words):
        word = tuple(word)
        if rng.random() < rate:
            position = rng.randint(0, len(word))
            intruder = rng.choice(list(intruders))
            word = word[:position] + (intruder,) + word[position:]
            touched.add(index)
        corrupted.append(word)
    return NoisyCorpus(
        words=corrupted,
        corrupted_indexes=touched,
        intruder_symbols=tuple(intruders),
    )


def perturb(
    words: Sequence[Word],
    rate: float,
    rng: random.Random,
) -> NoisyCorpus:
    """Randomly delete or duplicate one symbol in a fraction of words.

    Structural noise (as opposed to vocabulary noise): the corrupted
    words usually introduce unseen 2-grams, which is what the
    support-aware iDTD prunes.
    """
    corrupted: list[Word] = []
    touched: set[int] = set()
    for index, word in enumerate(words):
        word = tuple(word)
        if word and rng.random() < rate:
            position = rng.randrange(len(word))
            if rng.random() < 0.5:
                word = word[:position] + word[position + 1 :]
            else:
                word = word[: position + 1] + word[position:]
            touched.add(index)
        corrupted.append(word)
    return NoisyCorpus(
        words=corrupted, corrupted_indexes=touched, intruder_symbols=()
    )
