"""repro — inference of concise DTDs from XML data.

A from-scratch implementation of Bex, Neven, Schwentick & Tuyls,
"Inference of Concise DTDs from XML Data" (VLDB 2006): the iDTD and CRX
learning algorithms, the SOA→SORE ``rewrite`` system, the substrates
they stand on (regular-expression engine, automata toolkit, XML/DTD
machinery), the baselines the paper compares against (XTRACT, Trang)
and the full evaluation harness.

Quickstart::

    from repro import infer_sore, infer_chare
    from repro.api import InferenceConfig, infer

    words = [["a", "b"], ["b"], ["a", "b", "b"]]
    print(infer_sore(words))    # SORE via iDTD:   a? b+
    print(infer_chare(words))   # CHARE via CRX:   a? b+

    print(infer("<r><x/><y/></r>").render())

:func:`repro.api.infer` is the entry point for whole-corpus inference
(batch, streaming, sharded); :func:`repro.api.validate` and
:func:`repro.api.diff` are its companions for the paper's two
applications, and :class:`repro.api.InferenceSession` folds documents
in incrementally.  The older per-path entry points (``infer_dtd``,
``DTDInferencer.infer``, ``infer_parallel``, ...) are still importable
but deprecated — they warn once per process and refuse to run under
``REPRO_STRICT_API=1`` (see docs/API.md for the removal schedule).
"""

from .api import (
    DiffConfig,
    DiffResult,
    InferenceConfig,
    InferenceResult,
    InferenceSession,
    ValidationConfig,
    ValidationResult,
    diff,
    infer,
    validate,
)
from .automata import SOA, state_elimination
from .core import (
    DTDInferencer,
    annotate_numeric,
    crx as infer_chare,
    idtd as infer_sore,
    idtd_from_soa,
    infer_dtd,
    rewrite,
)
from .learning import (
    IncrementalCRX,
    IncrementalSOA,
    idtd_denoised,
    reservoir_sample,
    tinf,
)
from .regex import (
    Regex,
    is_chare,
    is_deterministic,
    is_sore,
    language_equivalent,
    language_included,
    matches,
    parse_regex,
    to_dtd_syntax,
    to_paper_syntax,
)
from .runtime import infer_parallel
from .xmlio import (
    Document,
    Dtd,
    dtd_to_xsd,
    parse_document,
    parse_dtd,
    parse_file,
)

__version__ = "1.0.0"

__all__ = [
    "DTDInferencer",
    "DiffConfig",
    "DiffResult",
    "Document",
    "Dtd",
    "InferenceConfig",
    "InferenceResult",
    "InferenceSession",
    "ValidationConfig",
    "ValidationResult",
    "diff",
    "infer",
    "IncrementalCRX",
    "IncrementalSOA",
    "Regex",
    "SOA",
    "annotate_numeric",
    "dtd_to_xsd",
    "idtd_denoised",
    "idtd_from_soa",
    "infer_chare",
    "infer_dtd",
    "infer_parallel",
    "infer_sore",
    "is_chare",
    "is_deterministic",
    "is_sore",
    "language_equivalent",
    "language_included",
    "matches",
    "parse_document",
    "parse_dtd",
    "parse_file",
    "parse_regex",
    "reservoir_sample",
    "rewrite",
    "state_elimination",
    "tinf",
    "to_dtd_syntax",
    "to_paper_syntax",
    "validate",
    "__version__",
]
