"""Evidence extraction from parsed corpora."""

from repro.xmlio.extract import child_sequences, extract_evidence
from repro.xmlio.parser import parse_document


def docs(*texts):
    return [parse_document(text) for text in texts]


class TestChildSequences:
    def test_sequences_in_document_order(self):
        corpus = docs("<r><a/><b/><a/></r>", "<r><b/></r>")
        assert child_sequences(corpus, "r") == [("a", "b", "a"), ("b",)]

    def test_nested_occurrences_collected(self):
        corpus = docs("<r><a><r><b/></r></a></r>")
        assert child_sequences(corpus, "r") == [("a",), ("b",)]


class TestEvidence:
    def test_occurrences_and_sequences(self):
        corpus = docs("<r><a/><a/></r>", "<r/>")
        evidence = extract_evidence(corpus)
        assert evidence.elements["r"].occurrences == 2
        assert evidence.elements["r"].child_sequences == [("a", "a"), ()]
        assert evidence.elements["a"].occurrences == 2

    def test_text_detection(self):
        corpus = docs("<r><a>text</a><b>  </b></r>")
        evidence = extract_evidence(corpus)
        assert evidence.elements["a"].has_text
        assert not evidence.elements["b"].has_text  # whitespace only

    def test_attribute_statistics(self):
        corpus = docs('<r><a x="1"/><a x="2" y="z"/></r>')
        element = extract_evidence(corpus).elements["a"]
        assert element.attribute_presence == {"x": 2, "y": 1}
        assert element.attribute_values["x"] == ["1", "2"]

    def test_majority_root(self):
        corpus = docs("<r/>", "<r/>", "<other/>")
        assert extract_evidence(corpus).majority_root() == "r"

    def test_empty_corpus(self):
        evidence = extract_evidence([])
        assert evidence.majority_root() is None
        assert evidence.samples() == {}

    def test_text_values_collected_for_sniffing(self):
        corpus = docs("<r><y>1999</y><y>2006</y></r>")
        assert extract_evidence(corpus).elements["y"].text_values == [
            "1999",
            "2006",
        ]
