"""Noise handling (Section 9): supports, thresholding, edge pruning."""

import random

import pytest

from repro.datagen.noise import inject_intruders
from repro.datagen.strings import padded_sample
from repro.learning.noise import WeightedSOA, idtd_denoised
from repro.regex.language import language_equivalent, matches
from repro.regex.parser import parse_regex


class TestWeightedSOA:
    def test_supports_counted(self):
        weighted = WeightedSOA.from_words(
            [("a", "b"), ("a", "b"), ("a", "c")]
        )
        assert weighted.edge_support[("a", "b")] == 2
        assert weighted.edge_support[("a", "c")] == 1
        assert weighted.initial_support["a"] == 3
        assert weighted.symbol_support["b"] == 2

    def test_symbol_support_counts_words_not_occurrences(self):
        weighted = WeightedSOA.from_words([("a", "a", "a")])
        assert weighted.symbol_support["a"] == 1

    def test_prune_symbols(self):
        weighted = WeightedSOA.from_words(
            [("a", "b")] * 10 + [("a", "z", "b")]
        )
        pruned = weighted.prune_symbols(min_support=2)
        assert "z" not in pruned.soa.symbols
        assert ("a", "b") in pruned.soa.edges
        assert ("a", "z") not in pruned.soa.edges


class TestDenoising:
    def test_thresholds_zero_equals_idtd(self):
        from repro.core.idtd import idtd

        words = [tuple(w) for w in ["ab", "abb", "b"]]
        result = idtd_denoised(words)
        assert result.regex == idtd(words)
        assert not result.dropped_symbols
        assert not result.dropped_edges

    def test_xhtml_scenario_intruder_removed(self):
        """The paper's <p> case: rare disallowed children disappear."""
        rng = random.Random(4)
        target = parse_regex("(a + b + c + d)*")
        clean = padded_sample(target, 400, rng)
        noisy = inject_intruders(clean, ["table", "h1"], rate=0.01, rng=rng)
        result = idtd_denoised(noisy.words, symbol_threshold=10)
        assert set(result.dropped_symbols) <= {"table", "h1"}
        assert "table" not in result.regex.alphabet()
        assert language_equivalent(result.regex, target)

    def test_edge_pruning_unsticks_rewrite(self):
        """A corrupted 2-gram is dropped instead of repaired around."""
        target = parse_regex("x y z")
        words = [tuple("xyz")] * 50 + [tuple("xzy")]  # one scrambled word
        result = idtd_denoised(words, edge_threshold=1)
        assert result.dropped_edges  # the rare grams were deleted
        assert language_equivalent(result.regex, target)
        assert not matches(result.regex, tuple("xzy"))

    def test_lazy_mode_keeps_absorbable_noise(self):
        """The paper-literal variant prunes only while rewrite is stuck,
        so low-support structure rewrite can express survives."""
        words = [tuple("xyz")] * 50 + [tuple("xzy")]
        result = idtd_denoised(words, edge_threshold=1, eager=False)
        assert matches(result.regex, tuple("xyz"))
        # lazy pruning stops as soon as a SORE exists; the answer may
        # still cover part of the noise word's structure
        assert result.regex.alphabet() == {"x", "y", "z"}

    def test_denoised_may_exclude_noise_words(self):
        words = [tuple("ab")] * 20 + [tuple("ba")]
        result = idtd_denoised(words, edge_threshold=1)
        assert matches(result.regex, tuple("ab"))
        assert not matches(result.regex, tuple("ba"))

    def test_all_below_threshold_rejected(self):
        with pytest.raises(ValueError):
            idtd_denoised([("a",)], symbol_threshold=10)
