"""Soundness and pipeline byte-identity across every learner method.

Two properties over generated corpora, for every ``method=``:

* **Soundness** — the inferred content model accepts every witnessed
  child sequence, decided by derivative-based membership (so it holds
  for interleaved models too, which have no Glushkov automaton).
* **Pipeline identity** — batch, streaming, sharded, session and
  checkpointed/resumed runs render byte-identical DTDs, extending the
  repo-wide invariant to the kore/sire learner states.

Corpora come from :mod:`repro.datagen.occurrences` (repeated-symbol
and shuffled data the paper's learners cannot express) plus an
ordinary SORE corpus, all seeded.
"""

from __future__ import annotations

import random

import pytest

from repro.api import InferenceConfig, InferenceSession, infer
from repro.contracts import contracts_enabled, set_contracts
from repro.core.inference import METHODS
from repro.datagen.occurrences import repeated_symbol_corpus, shuffled_corpus
from repro.datagen.strings import Word, padded_sample
from repro.regex.classify import is_deterministic
from repro.regex.language import matches
from repro.regex.parser import parse_regex
from repro.xmlio.dtd import Children

LEARNER_METHODS = [name for name in METHODS if name != "auto"]


def corpus_words(kind: str) -> list[Word]:
    rng = random.Random(17)
    if kind == "repeated":
        return repeated_symbol_corpus(("a", "b", "c"), 25, rng, k=3)[1]
    if kind == "shuffled":
        return shuffled_corpus(("a b?", "c", "d+"), 25, rng)[1]
    return padded_sample(parse_regex("x (y + z)? w*"), 25, rng)


CORPUS_KINDS = ("repeated", "shuffled", "sore")


def documents(words: list[Word]) -> list[str]:
    """One document per word: the word as the root's child sequence."""
    return [
        "<r>" + "".join(f"<{name}/>" for name in word) + "</r>"
        for word in words
    ]


def write_documents(tmp_path, words: list[Word]) -> list[str]:
    tmp_path.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, text in enumerate(documents(words)):
        path = tmp_path / f"doc{index}.xml"
        path.write_text(text, encoding="utf-8")
        paths.append(str(path))
    return paths


@pytest.fixture(autouse=True)
def _contracts_on():
    """Every emitted model re-verified one-unambiguous in-process."""
    previous = contracts_enabled()
    set_contracts(True)
    yield
    set_contracts(previous)


class TestSoundness:
    @pytest.mark.parametrize("kind", CORPUS_KINDS)
    @pytest.mark.parametrize("method", METHODS)
    def test_model_accepts_every_witnessed_sequence(self, method, kind):
        words = corpus_words(kind)
        result = infer(documents(words), config=InferenceConfig(method=method))
        model = result.dtd.elements["r"]
        assert isinstance(model, Children), model
        for word in words:
            assert matches(model.regex, word), (method, kind, word)

    @pytest.mark.parametrize("kind", CORPUS_KINDS)
    @pytest.mark.parametrize("method", METHODS)
    def test_model_is_one_unambiguous(self, method, kind):
        words = corpus_words(kind)
        result = infer(documents(words), config=InferenceConfig(method=method))
        model = result.dtd.elements["r"]
        assert isinstance(model, Children)
        assert is_deterministic(model.regex), (method, kind)


class TestExpressivenessGap:
    """Where the new learners must beat the paper's, per the issue."""

    def test_kore_counts_repetitions_sore_cannot(self):
        words = corpus_words("repeated")
        kore = infer(documents(words), config=InferenceConfig(method="kore"))
        sore = infer(documents(words), config=InferenceConfig(method="idtd"))
        kore_model = kore.dtd.elements["r"]
        sore_model = sore.dtd.elements["r"]
        assert isinstance(kore_model, Children)
        assert isinstance(sore_model, Children)
        overlong = ("a",) * 5
        assert not matches(kore_model.regex, overlong)
        assert matches(sore_model.regex, overlong)  # the star-soup merge

    def test_sire_keeps_counts_chare_loses(self):
        words = corpus_words("shuffled")
        sire = infer(documents(words), config=InferenceConfig(method="sire"))
        chare = infer(documents(words), config=InferenceConfig(method="crx"))
        sire_model = sire.dtd.elements["r"]
        chare_model = chare.dtd.elements["r"]
        assert isinstance(sire_model, Children)
        assert isinstance(chare_model, Children)
        doubled_c = ("a", "c", "c", "d")
        assert not matches(sire_model.regex, doubled_c)
        assert matches(chare_model.regex, doubled_c)


class TestPipelineByteIdentity:
    @pytest.mark.parametrize("kind", CORPUS_KINDS)
    @pytest.mark.parametrize("method", ["kore", "sire"])
    def test_streaming_and_jobs_match_batch(self, tmp_path, method, kind):
        paths = write_documents(tmp_path, corpus_words(kind))
        batch = infer(paths, config=InferenceConfig(method=method)).render()
        streaming = infer(
            paths, config=InferenceConfig(method=method, streaming=True)
        ).render()
        sharded = infer(
            paths, config=InferenceConfig(method=method, jobs=2)
        ).render()
        assert streaming == batch
        assert sharded == batch

    @pytest.mark.parametrize("method", ["kore", "sire"])
    def test_session_chunks_match_one_shot(self, method):
        kind = "repeated" if method == "kore" else "shuffled"
        docs = documents(corpus_words(kind))
        one_shot = infer(docs, config=InferenceConfig(method=method)).render()
        session = InferenceSession(InferenceConfig(method=method))
        for start in range(0, len(docs), 5):
            session.append(docs[start : start + 5])
        assert session.current_dtd().render() == one_shot

    @pytest.mark.parametrize("method", ["kore", "sire"])
    def test_checkpointed_and_resumed_match_plain(self, tmp_path, method):
        kind = "repeated" if method == "kore" else "shuffled"
        paths = write_documents(tmp_path / "corpus", corpus_words(kind))
        plain = infer(paths, config=InferenceConfig(method=method)).render()
        state = tmp_path / "state"
        checkpointed = infer(
            paths, config=InferenceConfig(method=method, state_dir=state)
        ).render()
        resumed = infer(
            paths,
            config=InferenceConfig(
                method=method, state_dir=state, resume=True
            ),
        ).render()
        assert checkpointed == plain
        assert resumed == plain

def test_write_documents_round_trip(tmp_path):
    words = [("a",), ("a", "b")]
    paths = write_documents(tmp_path, words)
    assert [open(p, encoding="utf-8").read() for p in paths] == [
        "<r><a/></r>",
        "<r><a/><b/></r>",
    ]
