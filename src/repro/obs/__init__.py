"""Observability: span timers, counters, memory and perf snapshots.

The instrumentation substrate of the pipeline (see ``docs/API.md``):

* :class:`Recorder` — the protocol every instrumented layer accepts;
* :data:`NULL_RECORDER` / :class:`NullRecorder` — the near-free
  default used whenever no recorder is passed;
* :class:`StatsRecorder` — collects hierarchical spans, counters,
  aggregated hot-loop timings and peak-RSS samples, with picklable
  snapshots that merge across map-reduce shards;
* :func:`format_stats` / :func:`write_trace` — the ``--stats`` table
  and ``--trace`` JSON-lines renderings;
* :func:`validate_trace_lines` — the trace schema check used by tests
  and the CI smoke step.

Deliberately dependency-free within repro, so every layer (including
``xmlio`` and ``automata``) can import it without cycles.
"""

from .check_trace import validate_trace_file, validate_trace_lines
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Snapshot,
    StatsRecorder,
    peak_rss_kb,
)
from .report import (
    PHASE_ORDER,
    format_stats,
    iter_trace_lines,
    peak_rss_of,
    phase_totals,
    summary_dict,
    write_trace,
)

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "PHASE_ORDER",
    "Recorder",
    "Snapshot",
    "StatsRecorder",
    "format_stats",
    "iter_trace_lines",
    "peak_rss_kb",
    "peak_rss_of",
    "phase_totals",
    "summary_dict",
    "validate_trace_file",
    "validate_trace_lines",
    "write_trace",
]
