"""String generation: membership and representativeness guarantees."""

import random

from hypothesis import given, settings

from repro.datagen.strings import (
    padded_sample,
    random_word,
    representative_sample,
    sample_words,
)
from repro.learning.tinf import tinf
from repro.automata.soa import SOA
from repro.regex.language import matches
from repro.regex.parser import parse_regex

from ..conftest import sores


class TestRandomWord:
    @settings(max_examples=40, deadline=None)
    @given(sores(max_symbols=6))
    def test_words_belong_to_the_language(self, expression):
        rng = random.Random(1)
        for _ in range(10):
            assert matches(expression, random_word(expression, rng))

    def test_repeat_bounds_respected(self):
        rng = random.Random(2)
        expression = parse_regex("a{2,4}")
        for _ in range(50):
            word = random_word(expression, rng)
            assert 2 <= len(word) <= 4

    def test_sample_words_count(self):
        words = sample_words(parse_regex("a b?"), 7, random.Random(0))
        assert len(words) == 7


class TestRepresentativeSample:
    @settings(max_examples=50, deadline=None)
    @given(sores(max_symbols=7))
    def test_covers_the_full_soa(self, expression):
        """2T-INF on the sample recovers exactly the SORE's SOA."""
        sample = representative_sample(expression)
        assert tinf(sample).language_equal(SOA.from_regex(expression))

    @settings(max_examples=30, deadline=None)
    @given(sores(max_symbols=6))
    def test_all_words_in_language(self, expression):
        for word in representative_sample(expression):
            assert matches(expression, word)

    def test_includes_empty_word_for_nullable_targets(self):
        assert () in representative_sample(parse_regex("a?"))
        assert () not in representative_sample(parse_regex("a"))

    def test_deterministic(self):
        expression = parse_regex("(a + b)+ c d?")
        assert representative_sample(expression) == representative_sample(
            expression
        )

    def test_size_linear_in_grams(self):
        """The sample has one word per 2-gram + starts, not more."""
        expression = parse_regex("(a + b + c)+ d")
        sample = representative_sample(expression)
        automaton_grams = 9 + 3  # internal + to-d grams
        assert len(sample) <= automaton_grams + 3 + 1


class TestPaddedSample:
    def test_reaches_requested_size(self, rng):
        expression = parse_regex("a (b + c)* d")
        sample = padded_sample(expression, 100, rng)
        assert len(sample) == 100
        for word in sample:
            assert matches(expression, word)

    def test_still_representative(self, rng):
        expression = parse_regex("(a + b)+ c?")
        sample = padded_sample(expression, 50, rng)
        assert tinf(sample).language_equal(SOA.from_regex(expression))
