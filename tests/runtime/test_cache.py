"""The fingerprint-keyed content-model cache: hits must be invisible.

The load-bearing property is byte-identity: inference with a cold
cache, a warm cache, or no cache at all must render the same DTD, on
both learners and both pipelines (batch and streaming).  Everything
else here — keying, invalidation, eviction, the poisoned-entry
contract — supports that property.
"""

import random

import pytest

import repro.learning.evidence as extract_module
from repro.api import InferenceConfig, infer
from repro.contracts import ContractViolation, contracts_active
from repro.core.idtd import idtd
from repro.core.inference import DTDInferencer
from repro.datagen.xmlgen import XmlGenerator, serialize
from repro.errors import UsageError
from repro.obs.recorder import StatsRecorder
from repro.runtime.cache import (
    ContentModelCache,
    global_content_model_cache,
    reset_global_content_model_cache,
)
from repro.runtime.parallel import warm_pool
from repro.xmlio.dtd import parse_dtd
from repro.xmlio.parser import parse_file

DTD_SOURCES = [
    "<!ELEMENT r (a+, b?)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>",
    '<!ELEMENT r (x*, (y | z)+)><!ELEMENT x EMPTY>'
    "<!ELEMENT y (#PCDATA)><!ELEMENT z (x?)>",
    "<!ELEMENT r (s*)><!ELEMENT s (t, u?)>"
    "<!ELEMENT t (#PCDATA)><!ELEMENT u EMPTY>",
]


@pytest.fixture(autouse=True)
def fresh_global_cache():
    reset_global_content_model_cache()
    yield
    reset_global_content_model_cache()


def write_corpus(tmp_path, source, count, seed=3):
    generator = XmlGenerator(parse_dtd(source), random.Random(seed))
    paths = []
    for index, document in enumerate(generator.corpus(count)):
        path = tmp_path / f"doc{index:03d}.xml"
        path.write_text(serialize(document), encoding="utf-8")
        paths.append(str(path))
    return paths


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = ContentModelCache(maxsize=2)
        r1, r2, r3 = idtd([("a",)]), idtd([("b",)]), idtd([("c",)])
        cache.put(("k1",), r1)
        cache.put(("k2",), r2)
        assert cache.get(("k1",)) is r1  # refresh k1: k2 becomes LRU
        cache.put(("k3",), r3)
        assert ("k2",) not in cache
        assert ("k1",) in cache and ("k3",) in cache
        assert cache.info()["evictions"] == 1

    def test_invalidate_empties_and_counts(self):
        cache = ContentModelCache(maxsize=8)
        cache.put(("k",), idtd([("a",)]))
        assert cache.invalidate() == 1
        assert len(cache) == 0
        assert cache.get(("k",)) is None

    def test_maxsize_must_be_positive(self):
        with pytest.raises(UsageError):
            ContentModelCache(maxsize=0)

    def test_global_cache_is_a_singleton_until_reset(self):
        first = global_content_model_cache()
        assert global_content_model_cache() is first
        reset_global_content_model_cache()
        assert global_content_model_cache() is not first

    def test_counters_reach_the_recorder(self):
        cache = ContentModelCache(maxsize=4)
        recorder = StatsRecorder()
        assert cache.get(("k",), recorder) is None
        cache.put(("k",), idtd([("a",)]), recorder)
        assert cache.get(("k",), recorder) is not None
        counters = recorder.snapshot()["counters"]
        assert counters["cache.content_model.misses"] == 1
        assert counters["cache.content_model.hits"] == 1


class TestCachedEqualsUncached:
    """Property: the cache is semantically invisible."""

    @pytest.mark.parametrize("source", DTD_SOURCES)
    @pytest.mark.parametrize("method", ["idtd", "crx"])
    @pytest.mark.parametrize("streaming", [False, True])
    def test_byte_identical_across_randomized_corpora(
        self, tmp_path, source, method, streaming
    ):
        for seed in (3, 11):
            paths = write_corpus(
                tmp_path, source, 10, seed=seed
            )
            uncached = infer(
                paths,
                config=InferenceConfig(
                    method=method, streaming=streaming, cache=False
                ),
            ).render()
            config = InferenceConfig(method=method, streaming=streaming)
            cold = infer(paths, config=config).render()
            warm = infer(paths, config=config).render()
            assert cold == uncached
            assert warm == uncached
            # Tampering evidence: the warm run actually hit the cache.
            assert global_content_model_cache().hits > 0

    def test_warm_hits_survive_contracts(self, tmp_path):
        paths = write_corpus(tmp_path, DTD_SOURCES[1], 12)
        cold = infer(paths).render()
        with contracts_active(True):
            assert infer(paths).render() == cold

    def test_batch_and_streaming_share_entries(self, tmp_path):
        # Both pipelines cache the learner output before optionality
        # wrapping and numeric annotation, so the same merged state
        # produces the same key regardless of pipeline.
        paths = write_corpus(tmp_path, DTD_SOURCES[0], 8)
        infer(paths, config=InferenceConfig(method="idtd"))
        entries_after_batch = len(global_content_model_cache())
        infer(paths, config=InferenceConfig(method="idtd", streaming=True))
        assert len(global_content_model_cache()) == entries_after_batch
        assert global_content_model_cache().hits > 0


class TestKeying:
    def test_method_is_part_of_the_key(self, tmp_path):
        paths = write_corpus(tmp_path, DTD_SOURCES[1], 10)
        infer(paths, config=InferenceConfig(method="idtd"))
        misses_after_idtd = global_content_model_cache().misses
        infer(paths, config=InferenceConfig(method="crx"))
        assert global_content_model_cache().misses > misses_after_idtd

    def test_sample_cap_is_part_of_the_key(self, tmp_path, monkeypatch):
        paths = write_corpus(tmp_path, DTD_SOURCES[0], 8)
        infer(paths)
        misses_before = global_content_model_cache().misses
        hits_before = global_content_model_cache().hits
        monkeypatch.setattr(extract_module, "SAMPLE_CAP", 7)
        infer(paths)
        assert global_content_model_cache().misses > misses_before
        assert global_content_model_cache().hits == hits_before

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_poisoned_entry_trips_the_contract(self, tmp_path):
        paths = write_corpus(tmp_path, DTD_SOURCES[0], 6)
        cache = ContentModelCache(maxsize=16)
        documents = [parse_file(path) for path in paths]
        inferencer = DTDInferencer(method="idtd", cache=cache)
        inferencer.infer_from_evidence(
            extract_module.extract_evidence(documents)
        )
        assert len(cache) > 0
        wrong = idtd([("bogus",)])
        for key in list(cache._entries):
            cache._entries[key] = wrong
        poisoned = DTDInferencer(method="idtd", cache=cache)
        with contracts_active(True), pytest.raises(ContractViolation):
            poisoned.infer_from_evidence(
                extract_module.extract_evidence(documents)
            )


class TestWarmPoolReuse:
    def test_two_infer_calls_reuse_the_pool_and_merge_snapshots(
        self, tmp_path
    ):
        paths = write_corpus(tmp_path, DTD_SOURCES[2], 12)
        pool = warm_pool("thread")
        executor = pool.executor()
        renders = []
        for _ in range(2):
            recorder = StatsRecorder()
            renders.append(
                infer(
                    paths,
                    config=InferenceConfig(
                        jobs=2, backend="thread", recorder=recorder
                    ),
                ).render()
            )
            snapshot = recorder.snapshot()
            shard_tags = {
                span["shard"]
                for span in snapshot["spans"]
                if span["shard"] is not None
            }
            assert shard_tags == {0, 1}
            assert snapshot["counters"]["shards"] == 2
            assert snapshot["counters"]["parallel.backend.thread"] == 1
        assert renders[0] == renders[1]
        assert pool.live
        assert pool.executor() is executor

    def test_shutdown_then_lazy_recreation(self):
        pool = warm_pool("thread")
        first = pool.executor()
        pool.shutdown()
        assert not pool.live
        second = pool.executor()
        assert second is not first
        pool.shutdown()
